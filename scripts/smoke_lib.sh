#!/usr/bin/env sh
# smoke_lib.sh — shared helpers for the multi-process smoke scripts
# (chaos_smoke.sh, fleet_smoke.sh). Source it, don't execute it:
#
#   BIN_DIR="$(mktemp -d)"
#   . "$(dirname "$0")/smoke_lib.sh"
#
# Callers must set BIN_DIR (where smoke_build drops binaries) before
# calling the helpers. CLOCK is the shared -fixed-clock value: every
# dominod in a smoke run pins its analyzer clock to it so reports from
# different processes are byte-comparable.

CLOCK="${CLOCK:-1754000000000000}"

smoke_build() { # $@ = ./cmd/... package paths
    go build -o "$BIN_DIR" "$@"
}

wait_healthy() { # $1 = host:port, $2 = log file to dump on failure
    for _ in $(seq 1 50); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server at $1 never became healthy"
    cat "$2"
    return 1
}

start_dominod() { # $1 = host:port, $2 = checkpoint path, $3 = log file,
                  # $4.. = extra dominod flags; sets STARTED_PID
    _addr="$1"; _spill="$2"; _log="$3"; shift 3
    "$BIN_DIR/dominod" -addr "$_addr" -store-spill "$_spill" \
        -fixed-clock "$CLOCK" -log-format json -v "$@" >>"$_log" 2>&1 &
    STARTED_PID=$!
    wait_healthy "$_addr" "$_log"
}

upload() { # $1 = base URL, $2 = session, $3 = cell, $4 = seed, $5 = duration
    # tracegen's summary line (attempts / resumed / shed-retries) goes
    # to TRACEGEN_LOG when set, so scripts can assert on retry behavior.
    "$BIN_DIR/tracegen" -cell "$3" -seed "$4" -duration "$5" \
        -upload "$1" -session "$2" -retries 8 -backoff 100ms \
        2>>"${TRACEGEN_LOG:-/dev/null}"
}
