#!/usr/bin/env sh
# obs_smoke.sh — end-to-end check of dominod's observability surface.
#
# Builds dominod, tracegen, and promlint; boots the service with the
# pprof debug listener enabled; ingests one generated session per wire
# format — JSONL and the compact binary columnar trace, each under its
# declared Content-Type; then asserts:
#   - /metrics passes the Prometheus text-exposition linter (promlint)
#   - /healthz reports ok with build identity
#   - both sessions completed and the per-format ingest counters moved
#   - the binary session's report matches its JSONL twin
#   - /debug/flightrec/{session} serves the pipeline flight recording
#   - the pprof endpoint yields a CPU profile
# Artifacts (scrape, flight recording, profile) land in OUT_DIR
# (default ./obs-smoke) so CI can upload them. Exit 0 only if every
# probe succeeds.
set -eu

OUT_DIR="${OUT_DIR:-obs-smoke}"
ADDR="${ADDR:-127.0.0.1:18077}"
DEBUG_ADDR="${DEBUG_ADDR:-127.0.0.1:18078}"
PROFILE_SECONDS="${PROFILE_SECONDS:-2}"

mkdir -p "$OUT_DIR"
BIN_DIR="$(mktemp -d)"
DOMINOD_PID=""
cleanup() {
    [ -n "$DOMINOD_PID" ] && kill "$DOMINOD_PID" 2>/dev/null || true
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT INT TERM

echo "== building dominod, tracegen, promlint"
go build -o "$BIN_DIR" ./cmd/dominod ./cmd/tracegen ./cmd/promlint

echo "== starting dominod on $ADDR (pprof on $DEBUG_ADDR)"
"$BIN_DIR/dominod" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -log-format json -v \
    >"$OUT_DIR/dominod.log" 2>&1 &
DOMINOD_PID=$!

for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >"$OUT_DIR/healthz.json" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
grep -q '"status": "ok"' "$OUT_DIR/healthz.json" || {
    echo "dominod never became healthy"; cat "$OUT_DIR/dominod.log"; exit 1; }
echo "   healthz: $(cat "$OUT_DIR/healthz.json" | tr -d '\n ')"

echo "== ingesting one generated session per wire format"
"$BIN_DIR/tracegen" -cell amarisoft -duration 20 -seed 7 -o "$BIN_DIR/call.jsonl"
"$BIN_DIR/tracegen" -format binary -cell amarisoft -duration 20 -seed 7 -o "$BIN_DIR/call.dmnt"
curl -fsS -X POST -H 'Content-Type: application/jsonl' \
    --data-binary @"$BIN_DIR/call.jsonl" \
    "http://$ADDR/ingest?session=smoke" >"$OUT_DIR/report.json"
curl -fsS -X POST -H 'Content-Type: application/x-domino-trace' \
    --data-binary @"$BIN_DIR/call.dmnt" \
    "http://$ADDR/ingest?session=smoke-binary" >"$OUT_DIR/report-binary.json"

# The binary upload must diagnose exactly like its JSONL twin — the
# reports differ only in the session field.
sed 's/"session": "[^"]*"/"session": ""/' "$OUT_DIR/report.json" >"$BIN_DIR/a.json"
sed 's/"session": "[^"]*"/"session": ""/' "$OUT_DIR/report-binary.json" >"$BIN_DIR/b.json"
cmp -s "$BIN_DIR/a.json" "$BIN_DIR/b.json" || {
    echo "binary-ingested report diverges from JSONL twin"
    diff "$BIN_DIR/a.json" "$BIN_DIR/b.json" | head -20; exit 1; }

echo "== validating /metrics exposition"
curl -fsS "http://$ADDR/metrics" >"$OUT_DIR/metrics.txt"
"$BIN_DIR/promlint" "$OUT_DIR/metrics.txt"
grep -q 'dominod_sessions_done_total 2' "$OUT_DIR/metrics.txt" || {
    echo "metrics missing completed sessions"; exit 1; }
grep -q 'dominod_ingest_records_total{format="jsonl"} [1-9]' "$OUT_DIR/metrics.txt" || {
    echo "metrics missing jsonl ingest records"; exit 1; }
grep -q 'dominod_ingest_records_total{format="binary"} [1-9]' "$OUT_DIR/metrics.txt" || {
    echo "metrics missing binary ingest records"; exit 1; }
grep -q 'domino_build_info{' "$OUT_DIR/metrics.txt" || {
    echo "metrics missing build info"; exit 1; }

echo "== dumping flight recording"
curl -fsS "http://$ADDR/debug/flightrec/smoke" >"$OUT_DIR/flightrec.jsonl"
grep -q '"kind":"report_stored"' "$OUT_DIR/flightrec.jsonl" || {
    echo "flight recording missing report_stored event"; exit 1; }
echo "   $(wc -l < "$OUT_DIR/flightrec.jsonl") events recorded"

echo "== capturing ${PROFILE_SECONDS}s CPU profile from pprof"
curl -fsS "http://$DEBUG_ADDR/debug/pprof/profile?seconds=$PROFILE_SECONDS" \
    >"$OUT_DIR/cpu.pprof"
[ -s "$OUT_DIR/cpu.pprof" ] || { echo "empty CPU profile"; exit 1; }

echo "== obs smoke OK (artifacts in $OUT_DIR)"
