#!/usr/bin/env sh
# fleet_smoke.sh — multi-process failover check for the dominolb fleet
# tier.
#
# Boots three dominod backends plus a dominolb in front of them, and a
# separate clean single-node dominod as the reference, all pinned to
# the same -fixed-clock. Then:
#   - uploads four sessions concurrently through the balancer
#   - kill -9s the backend that owns a throttled in-flight upload and
#     redelivers the session through the balancer (the client's
#     retryable-503 path re-pins it onto a survivor)
#   - SIGTERMs a second backend while another upload streams to it:
#     the in-flight session must complete on the draining node while
#     new sessions route elsewhere
#   - saturates the last survivor's ingest slots so a client upload is
#     shed with 429 + Retry-After and must retry its way in
#   - asserts every session's report served by the balancer is
#     byte-identical to the clean single-node run
#   - lints the balancer's federated /metrics and asserts the failover
#     and backend-health series moved
# Artifacts (daemon logs, the federated scrape, reports) land in
# OUT_DIR (default ./fleet-smoke) so CI can upload them.
set -eu

OUT_DIR="${OUT_DIR:-fleet-smoke}"
LB_ADDR="${LB_ADDR:-127.0.0.1:18270}"
CLEAN_ADDR="${CLEAN_ADDR:-127.0.0.1:18271}"
N1_ADDR="${N1_ADDR:-127.0.0.1:18272}"
N2_ADDR="${N2_ADDR:-127.0.0.1:18273}"
N3_ADDR="${N3_ADDR:-127.0.0.1:18274}"

mkdir -p "$OUT_DIR"
BIN_DIR="$(mktemp -d)"
WORK="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$BIN_DIR" "$WORK"
}
trap cleanup EXIT INT TERM

. "$(dirname "$0")/smoke_lib.sh"
TRACEGEN_LOG="$OUT_DIR/tracegen.log"
: >"$TRACEGEN_LOG"

echo "== building dominod, dominolb, tracegen, promlint"
smoke_build ./cmd/dominod ./cmd/dominolb ./cmd/tracegen ./cmd/promlint

echo "== starting clean reference node and a 3-node fleet behind dominolb"
start_dominod "$CLEAN_ADDR" "$WORK/clean.spill" "$OUT_DIR/clean.log"
PIDS="$PIDS $STARTED_PID"
# Two ingest slots per node so the overload phase below can saturate
# the last survivor deterministically.
start_dominod "$N1_ADDR" "$WORK/n1.spill" "$OUT_DIR/n1.log" \
    -node-id n1 -drain 30s -max-streams 2 -admit-wait 100ms
PID_N1=$STARTED_PID; PIDS="$PIDS $STARTED_PID"
start_dominod "$N2_ADDR" "$WORK/n2.spill" "$OUT_DIR/n2.log" \
    -node-id n2 -drain 30s -max-streams 2 -admit-wait 100ms
PID_N2=$STARTED_PID; PIDS="$PIDS $STARTED_PID"
start_dominod "$N3_ADDR" "$WORK/n3.spill" "$OUT_DIR/n3.log" \
    -node-id n3 -drain 30s -max-streams 2 -admit-wait 100ms
PID_N3=$STARTED_PID; PIDS="$PIDS $STARTED_PID"

"$BIN_DIR/dominolb" -addr "$LB_ADDR" \
    -backend "http://$N1_ADDR,http://$N2_ADDR,http://$N3_ADDR" \
    -health-interval 200ms -health-fails 3 -log-format json -v \
    >"$OUT_DIR/dominolb.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$LB_ADDR" "$OUT_DIR/dominolb.log"

owner_of() { # $1 = session; echoes the owning backend's host:port
    for a in "$N1_ADDR" "$N2_ADDR" "$N3_ADDR"; do
        if curl -fsS "http://$a/sessions/$1/watermark" >/dev/null 2>&1; then
            echo "$a"; return 0
        fi
    done
    echo "no backend owns session $1" >&2
    return 1
}

pid_of() { # $1 = backend host:port
    case "$1" in
    "$N1_ADDR") echo "$PID_N1" ;;
    "$N2_ADDR") echo "$PID_N2" ;;
    "$N3_ADDR") echo "$PID_N3" ;;
    esac
}

# session:cell:seed:duration — the whole workload, used for upload and
# for the deterministic redelivery of sessions lost with a dead node.
WORKLOAD="s1:amarisoft:11:10 s2:mosolabs:12:10 s3:tmobile-tdd:13:10 \
s4:tmobile-fdd:14:10 doomed:tmobile-fdd:21:10 s5:mosolabs:15:10 \
drained:amarisoft:22:8 shed1:amarisoft:23:5"
spec_of() { # $1 = session; echoes "cell seed duration"
    for spec in $WORKLOAD; do
        if [ "${spec%%:*}" = "$1" ]; then
            echo "$spec" | tr ':' ' ' | cut -d' ' -f2-4; return 0
        fi
    done
    return 1
}

echo "== uploading four sessions concurrently through the balancer"
UP_PIDS=""
for s in s1 s2 s3 s4; do
    # shellcheck disable=SC2046
    upload "http://$CLEAN_ADDR" "$s" $(spec_of "$s")
    upload "http://$LB_ADDR" "$s" $(spec_of "$s") &
    UP_PIDS="$UP_PIDS $!"
done
for p in $UP_PIDS; do wait "$p"; done

echo "== kill -9 the backend owning a throttled in-flight upload"
"$BIN_DIR/tracegen" -cell tmobile-fdd -seed 21 -duration 10 \
    -o "$WORK/doomed.jsonl" 2>/dev/null
set +e
curl -fsS -X POST -H 'Content-Type: application/jsonl' --limit-rate 100K \
    --data-binary @"$WORK/doomed.jsonl" "http://$LB_ADDR/ingest?session=doomed" \
    >/dev/null 2>&1 &
CURL_PID=$!
sleep 0.5
VICTIM_ADDR="$(owner_of doomed)"
[ -n "$VICTIM_ADDR" ] || exit 1
kill -9 "$(pid_of "$VICTIM_ADDR")"
wait "$CURL_PID"
CURL_RC=$?
set -e
[ "$CURL_RC" -ne 0 ] || {
    echo "doomed upload finished before the kill; raise -duration"; exit 1; }
echo "   killed $VICTIM_ADDR, redelivering doomed through the balancer"
# shellcheck disable=SC2046
upload "http://$LB_ADDR" doomed $(spec_of doomed)
# shellcheck disable=SC2046
upload "http://$CLEAN_ADDR" doomed $(spec_of doomed)

echo "== SIGTERM a second backend while an upload streams to it"
"$BIN_DIR/tracegen" -cell amarisoft -seed 22 -duration 8 \
    -o "$WORK/drained.jsonl" 2>/dev/null
curl -fsS -X POST -H 'Content-Type: application/jsonl' \
    --data-binary @"$WORK/drained.jsonl" \
    "http://$CLEAN_ADDR/ingest?session=drained" >"$WORK/drained.ref.json"
curl -fsS -X POST -H 'Content-Type: application/jsonl' --limit-rate 500K \
    --data-binary @"$WORK/drained.jsonl" \
    "http://$LB_ADDR/ingest?session=drained" >"$OUT_DIR/report-drained.json" &
CURL_PID=$!
sleep 0.5
DRAIN_ADDR="$(owner_of drained)"
kill -TERM "$(pid_of "$DRAIN_ADDR")"
echo "   draining $DRAIN_ADDR; new sessions must route elsewhere"
sleep 0.5 # let the prober observe the drain
# shellcheck disable=SC2046
upload "http://$CLEAN_ADDR" s5 $(spec_of s5)
upload "http://$LB_ADDR" s5 $(spec_of s5)
S5_ADDR="$(owner_of s5)"
[ "$S5_ADDR" != "$DRAIN_ADDR" ] || {
    echo "new session s5 landed on the draining node"; exit 1; }
wait "$CURL_PID" || {
    echo "in-flight upload did not survive the drain"; exit 1; }
cmp "$OUT_DIR/report-drained.json" "$WORK/drained.ref.json" || {
    echo "drained-through report diverges from the clean run"; exit 1; }

echo "== saturating the last survivor so the client's shed path fires"
# One node was killed and one drained away: every new session now pins
# to the lone survivor, which has two ingest slots. Two throttled
# uploads occupy both, so the third draws 429 + Retry-After through
# the balancer and the client's shed-retry counter must move.
for h in hog1 hog2; do
    "$BIN_DIR/tracegen" -cell amarisoft -seed 24 -duration 8 \
        -o "$WORK/$h.jsonl" 2>/dev/null
    curl -fsS -X POST -H 'Content-Type: application/jsonl' --limit-rate 500K \
        --data-binary @"$WORK/$h.jsonl" "http://$LB_ADDR/ingest?session=$h" \
        >/dev/null &
    HOG_PIDS="${HOG_PIDS:-} $!"
    sleep 0.2
done
# shellcheck disable=SC2046
upload "http://$LB_ADDR" shed1 $(spec_of shed1)
# shellcheck disable=SC2046
upload "http://$CLEAN_ADDR" shed1 $(spec_of shed1)
for p in $HOG_PIDS; do
    wait "$p" || { echo "hog upload failed"; exit 1; }
done

echo "== verifying every report against the clean single-node run"
for s in s1 s2 s3 s4 s5 doomed drained shed1; do
    code="$(curl -s -o "$WORK/$s.fleet.json" -w '%{http_code}' \
        "http://$LB_ADDR/report/$s")"
    if [ "$code" != "200" ]; then
        # Lost with a dead node: the recovery contract is client
        # redelivery through the balancer, which re-pins the session.
        echo "   report $s lost with its node ($code), redelivering"
        # shellcheck disable=SC2046
        upload "http://$LB_ADDR" "$s" $(spec_of "$s")
        curl -fsS "http://$LB_ADDR/report/$s" >"$WORK/$s.fleet.json"
    fi
    if [ "$s" = "drained" ]; then
        cp "$WORK/drained.ref.json" "$WORK/$s.clean.json"
    else
        curl -fsS "http://$CLEAN_ADDR/report/$s" >"$WORK/$s.clean.json"
    fi
    cmp "$WORK/$s.fleet.json" "$WORK/$s.clean.json" || {
        echo "report $s served by the fleet diverges from the clean run"
        exit 1; }
    cp "$WORK/$s.fleet.json" "$OUT_DIR/report-$s.json"
done

echo "== linting the federated /metrics exposition"
curl -fsS "http://$LB_ADDR/metrics" >"$OUT_DIR/fleet-metrics.txt"
"$BIN_DIR/promlint" "$OUT_DIR/fleet-metrics.txt"
grep -q 'dominolb_failovers_total [1-9]' "$OUT_DIR/fleet-metrics.txt" || {
    echo "no failovers recorded despite a kill -9"; exit 1; }
grep -q "dominolb_backend_up{backend=\"http://$VICTIM_ADDR\"} 0" \
    "$OUT_DIR/fleet-metrics.txt" || {
    echo "killed backend still reported up"; exit 1; }
grep -q 'dominod_node_info{node="n[0-9]"} 1' "$OUT_DIR/fleet-metrics.txt" || {
    echo "surviving backends' node identity missing from federation"; exit 1; }
grep -q '[1-9][0-9]* shed-retries' "$TRACEGEN_LOG" || {
    echo "client never reported a shed-retry despite balancer 503s"; exit 1; }

echo "fleet smoke OK: failover and drain are byte-identical to a clean run"
