// Command rcaquery runs longitudinal queries over a spilled fleet RCA
// store offline — the same query engine dominod serves on /query and
// /incidents/similar, pointed at a file instead of a live service.
//
// Usage:
//
//	rcaquery -store fleet.jsonl [filters] [action]
//
// Filters (combine freely):
//
//	-cell NAME         exact cell match
//	-scenario NAME     exact scenario match
//	-cause NODE        cause class fired at least once
//	-fired a,b,c       every listed node fired
//	-session ID        exact session match
//	-from US -to US    start-time range, microseconds
//	-last DUR          only the trailing DUR of the store's timeline
//	-limit N           truncate record listings
//
// Actions (default lists matching records):
//
//	-top-chains N      rank causal chains by total collapsed runs
//	-cause-rates DUR   per-cell cause-class rates in DUR buckets
//	-similar ID        nearest prior incidents to a stored session
//	-similar-fired a,b nearest prior incidents to an explicit signature
//	-stats             store shape and retention counters
//
// Examples (the README cookbook):
//
//	rcaquery -store fleet.jsonl -last 1h -top-chains 5
//	rcaquery -store fleet.jsonl -cause ul_scheduling -cause-rates 10m
//	rcaquery -store fleet.jsonl -similar s0042 -k 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rcaquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storePath := fs.String("store", "", "spilled RCA store (JSONL, written by dominod -store-spill or Store.Spill)")
	cell := fs.String("cell", "", "filter: exact cell name")
	scenario := fs.String("scenario", "", "filter: exact scenario name")
	cause := fs.String("cause", "", "filter: cause class with at least one chain run")
	fired := fs.String("fired", "", "filter: comma-separated nodes that must all have fired")
	session := fs.String("session", "", "filter: exact session ID")
	from := fs.Int64("from", 0, "filter: minimum start time (µs)")
	to := fs.Int64("to", 0, "filter: exclusive maximum start time (µs)")
	last := fs.Duration("last", 0, "filter: trailing window measured back from the newest record")
	limit := fs.Int("limit", 0, "truncate record listings to N rows")
	topChains := fs.Int("top-chains", 0, "action: rank the top N causal chains")
	causeRates := fs.Duration("cause-rates", 0, "action: per-cell cause rates in buckets of this size")
	similar := fs.String("similar", "", "action: nearest prior incidents to this stored session")
	similarFired := fs.String("similar-fired", "", "action: nearest prior incidents to this comma-separated signature")
	k := fs.Int("k", 5, "result count for -similar/-similar-fired")
	showStats := fs.Bool("stats", false, "action: print store statistics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storePath == "" {
		fmt.Fprintln(stderr, "rcaquery: -store is required")
		fs.Usage()
		return 2
	}
	f, err := os.Open(*storePath)
	if err != nil {
		fmt.Fprintln(stderr, "rcaquery:", err)
		return 1
	}
	st, err := rcastore.Load(f, rcastore.Options{})
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "rcaquery:", err)
		return 1
	}

	q := rcastore.Query{
		From: sim.Time(*from), To: sim.Time(*to),
		Cell: *cell, Scenario: *scenario, Session: *session,
		Cause: *cause, Limit: *limit,
	}
	if *fired != "" {
		q.FiredAll = strings.Split(*fired, ",")
	}
	if *last > 0 {
		// Offline stores have no "now"; anchor the window at the newest
		// retained record so "-last 1h" means the store's final hour.
		end := st.Stats().MaxStart
		q.From = end - sim.Time(*last/time.Microsecond)
	}

	switch {
	case *showStats:
		s := st.Stats()
		fmt.Fprintf(stdout, "rows %d (inserted %d, evicted %d in %d blocks)\n", s.Rows, s.InsertedRows, s.EvictedRows, s.EvictedBlocks)
		fmt.Fprintf(stdout, "dictionaries: %d nodes, %d chains, %d causes, %d cells, %d scenarios, %d metrics\n",
			s.Nodes, s.Chains, s.Causes, s.Cells, s.Scenarios, s.MetricNames)
		fmt.Fprintf(stdout, "timeline: start %d..%d µs\n", int64(s.MinStart), int64(s.MaxStart))
	case *topChains > 0:
		tb := stats.NewTable("Runs", "Sessions", "Chain")
		for _, c := range st.TopChains(q, *topChains) {
			tb.AddRow(c.Runs, c.Sessions, c.Chain)
		}
		fmt.Fprint(stdout, tb.String())
	case *causeRates > 0:
		tb := stats.NewTable("Cell", "Bucket (µs)", "Cause", "Runs", "Sessions", "Runs/min")
		for _, b := range st.CauseRates(q, sim.Time(*causeRates/time.Microsecond)) {
			tb.AddRow(b.Cell, int64(b.Bucket), b.Cause, b.Runs, b.Sessions, b.RunsPerMin)
		}
		fmt.Fprint(stdout, tb.String())
	case *similar != "" || *similarFired != "":
		probe := strings.Split(*similarFired, ",")
		if *similar != "" {
			rec, ok := st.Fired(*similar)
			if !ok {
				fmt.Fprintf(stderr, "rcaquery: session %q has no stored report\n", *similar)
				return 1
			}
			probe = rec.Fired
		}
		tb := stats.NewTable("Distance", "Session", "Cell", "Scenario", "Start (µs)", "Chain runs")
		rows := 0
		for _, m := range st.Similar(probe, q, *k+1) {
			if m.Session == *similar || rows == *k {
				continue // the probe itself is not an answer
			}
			tb.AddRow(m.Distance, m.Session, m.Cell, m.Scenario, int64(m.Start), m.TotalChainRuns())
			rows++
		}
		fmt.Fprint(stdout, tb.String())
	default:
		tb := stats.NewTable("Session", "Cell", "Scenario", "Start (µs)", "Dur (s)", "Fired", "Chain runs", "Top cause")
		for _, r := range st.Query(q) {
			top, runs := "-", 0
			for _, c := range r.Causes {
				if c.Runs > runs {
					top, runs = c.Cause, c.Runs
				}
			}
			tb.AddRow(r.Session, r.Cell, r.Scenario, int64(r.Start), r.Duration().Seconds(),
				len(r.Fired), r.TotalChainRuns(), top)
		}
		fmt.Fprint(stdout, tb.String())
	}
	return 0
}
