package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/sim"
)

// writeFixtureStore spills a small three-session fleet to disk.
func writeFixtureStore(t *testing.T) string {
	t.Helper()
	st := rcastore.New(rcastore.Options{})
	mk := func(session, cell, scen string, minute int, fired []string, chain, cause string, runs int) {
		start := sim.Time(minute) * sim.Minute
		rec := rcastore.Record{
			Session: session, Cell: cell, Scenario: scen,
			Start: start, End: start + sim.Minute, Fired: fired,
		}
		if chain != "" {
			rec.Chains = []rcastore.ChainRuns{{Chain: chain, Runs: runs}}
			rec.Causes = []rcastore.CauseRuns{{Cause: cause, Runs: runs}}
		}
		st.Insert(rec)
	}
	mk("s1", "tdd", "harq-storm", 0, []string{"harq_retx", "jitter_buffer_drain"},
		"harq_retx --> jitter_buffer_drain", "harq_retx", 4)
	mk("s2", "tdd", "grant-starvation", 30, []string{"ul_scheduling", "target_bitrate_down"},
		"ul_scheduling --> target_bitrate_down", "ul_scheduling", 7)
	mk("s3", "fdd", "harq-storm", 60, []string{"harq_retx"},
		"harq_retx --> jitter_buffer_drain", "harq_retx", 1)
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Spill(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestListRecords(t *testing.T) {
	store := writeFixtureStore(t)
	out, errOut, code := runCLI(t, "-store", store)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"s1", "s2", "s3", "harq-storm", "ul_scheduling"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
	// Filters narrow the listing.
	out, _, _ = runCLI(t, "-store", store, "-cell", "fdd")
	if strings.Contains(out, "s1") || !strings.Contains(out, "s3") {
		t.Fatalf("-cell filter wrong:\n%s", out)
	}
	out, _, _ = runCLI(t, "-store", store, "-cause", "ul_scheduling")
	if !strings.Contains(out, "s2") || strings.Contains(out, "s3") {
		t.Fatalf("-cause filter wrong:\n%s", out)
	}
	out, _, _ = runCLI(t, "-store", store, "-last", "45m")
	if strings.Contains(out, "s1") || !strings.Contains(out, "s3") {
		t.Fatalf("-last window wrong (anchored at newest record):\n%s", out)
	}
}

func TestTopChainsAction(t *testing.T) {
	store := writeFixtureStore(t)
	out, _, code := runCLI(t, "-store", store, "-top-chains", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	// ul_scheduling chain has 7 runs vs harq's 5: it must be ranked.
	if !strings.Contains(out, "ul_scheduling --> target_bitrate_down") {
		t.Fatalf("top chain wrong:\n%s", out)
	}
	if strings.Contains(out, "harq_retx --> jitter_buffer_drain") {
		t.Fatalf("-top-chains 1 returned more than one chain:\n%s", out)
	}
}

func TestCauseRatesAction(t *testing.T) {
	store := writeFixtureStore(t)
	out, _, code := runCLI(t, "-store", store, "-cause-rates", "30m")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"tdd", "fdd", "harq_retx", "ul_scheduling"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cause-rates missing %q:\n%s", want, out)
		}
	}
}

func TestSimilarAction(t *testing.T) {
	store := writeFixtureStore(t)
	out, _, code := runCLI(t, "-store", store, "-similar", "s1", "-k", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	// s3 shares harq_retx (distance 1); s2 shares nothing (distance 4).
	if !strings.Contains(out, "s3") || strings.Contains(out, "s2") {
		t.Fatalf("similar ranking wrong:\n%s", out)
	}
	if strings.Contains(out, "s1") {
		t.Fatalf("probe session listed as its own match:\n%s", out)
	}
	out, _, code = runCLI(t, "-store", store, "-similar-fired", "ul_scheduling,target_bitrate_down", "-k", "1")
	if code != 0 || !strings.Contains(out, "s2") {
		t.Fatalf("similar-fired wrong (exit %d):\n%s", code, out)
	}
	if _, errOut, code := runCLI(t, "-store", store, "-similar", "nope"); code != 1 || !strings.Contains(errOut, "no stored report") {
		t.Fatalf("unknown probe session: exit %d, stderr %s", code, errOut)
	}
}

func TestStatsAction(t *testing.T) {
	store := writeFixtureStore(t)
	out, _, code := runCLI(t, "-store", store, "-stats")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "rows 3") || !strings.Contains(out, "2 chains") {
		t.Fatalf("stats output wrong:\n%s", out)
	}
}

func TestBadInvocations(t *testing.T) {
	if _, _, code := runCLI(t); code != 2 {
		t.Fatalf("missing -store: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-store", "does-not-exist.jsonl"); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not a store\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runCLI(t, "-store", bad); code != 1 {
		t.Fatalf("corrupt store: exit %d, want 1", code)
	}
	if _, _, code := runCLI(t, "-bogus-flag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
