// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish benchmark metrics (records/s throughput,
// ns/op, custom ReportMetric units) as a machine-readable artifact and
// track the performance trajectory across commits.
//
// Usage:
//
//	go test -bench 'BenchmarkStreamAnalyzer|BenchmarkScenarioTraceGen' \
//	    -benchtime=1x -run '^$' . | benchjson > BENCH_scenarios.json
//
// Non-benchmark lines (goos/goarch headers, PASS/ok trailers, test log
// output) are ignored, so the whole `go test` stream can be piped in.
//
// Repeated runs of the same benchmark (`go test -count=N`, the perf
// gate's noise armor) are merged best-of: throughput metrics (unit
// ending in "/s") keep their maximum, every other metric (ns/op, B/op,
// allocs/...) its minimum. On a shared CI box interference only ever
// makes numbers worse, so best-of-N is the stable estimate to gate on;
// deterministic metrics (counts, buffered-sample gauges) are identical
// across runs and unaffected by the merge.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix
	// stripped (e.g. "BenchmarkScenarioTraceGen/harq-storm").
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the
	// line (ns/op, B/op, allocs/op, records/s, ...).
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(in io.Reader, stdout, stderr io.Writer) int {
	doc := document{Benchmarks: []benchResult{}}
	index := map[string]int{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if at, seen := index[r.Name]; seen {
			mergeBest(&doc.Benchmarks[at], r)
			continue
		}
		index[r.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(doc.Benchmarks) == 0 {
		// An empty document means the bench run produced nothing — a
		// misspelled -bench pattern or a swallowed failure upstream.
		// Fail loudly instead of publishing a hollow artifact.
		fmt.Fprintln(stderr, "benchjson: no benchmark result lines in input")
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// mergeBest folds a repeated run into the kept entry: maximum for
// throughput ("/s") metrics, minimum for everything else. Metrics seen
// in only one run are kept as-is.
func mergeBest(into *benchResult, next benchResult) {
	for unit, v := range next.Metrics {
		cur, ok := into.Metrics[unit]
		if !ok {
			into.Metrics[unit] = v
			continue
		}
		if strings.HasSuffix(unit, "/s") {
			if v > cur {
				into.Metrics[unit] = v
			}
		} else if v < cur {
			into.Metrics[unit] = v
		}
	}
}

// parseLine decodes one `go test -bench` result line of the form
//
//	BenchmarkName-8   12   98765 ns/op   3.2e+06 records/s
//
// reporting ok=false for anything else.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS decoration, keeping sub-benchmark
	// path segments intact.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := benchResult{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
