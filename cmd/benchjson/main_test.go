package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/domino5g/domino
BenchmarkStreamAnalyzer/stream-8         	       1	  3072625 ns/op	 1177 B/op	       5 allocs/op	 3303142 records/s	    4519 max-buffered-samples
BenchmarkScenarioTraceGen/harq-storm-8   	       1	182944708 ns/op	  812345 records/s	 109.3 sim-s/s
BenchmarkScenarioTraceGen/rtcp-stall     	       2	 90000000 ns/op
PASS
ok  	github.com/domino5g/domino	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int64              `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkStreamAnalyzer/stream" || first.Iterations != 1 {
		t.Fatalf("first benchmark parsed wrong: %+v", first)
	}
	if first.Metrics["records/s"] != 3303142 || first.Metrics["ns/op"] != 3072625 {
		t.Fatalf("metrics parsed wrong: %v", first.Metrics)
	}
	// A sub-benchmark without the -N suffix keeps its full name.
	if doc.Benchmarks[2].Name != "BenchmarkScenarioTraceGen/rtcp-stall" || doc.Benchmarks[2].Iterations != 2 {
		t.Fatalf("third benchmark parsed wrong: %+v", doc.Benchmarks[2])
	}
}

// TestEmptyInputFails pins the hollow-artifact guard: input with no
// benchmark lines (swallowed upstream failure, bad -bench pattern)
// must exit nonzero instead of emitting an empty document.
func TestEmptyInputFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader("goos: linux\nPASS\n"), &stdout, &stderr); code == 0 {
		t.Fatal("empty bench input accepted")
	}
	if !strings.Contains(stderr.String(), "no benchmark result lines") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestParseMultiPackageStream pins the scheduler/codec microbenchmark
// coverage: `make bench-json` now concatenates bench output from the
// root package plus internal/sim and internal/trace, so the parser must
// handle multiple goos/pkg header blocks in one stream and keep the
// custom events/s, rec/s, and allocs/rec metrics.
func TestParseMultiPackageStream(t *testing.T) {
	input := `goos: linux
pkg: github.com/domino5g/domino
BenchmarkScenarioTraceGen/amarisoft-8 	       1	  13835767 ns/op	 1616958 records/s	      1446 sim-s/s
PASS
ok  	github.com/domino5g/domino	1.2s
goos: linux
pkg: github.com/domino5g/domino/internal/sim
BenchmarkEngineSchedule-8 	       1	  11268650 ns/op	  11631825 events/s	      42 B/op	       0 allocs/op
PASS
ok  	github.com/domino5g/domino/internal/sim	0.1s
pkg: github.com/domino5g/domino/internal/trace
BenchmarkCodecEncode/fast 	       1	    718107 ns/op	         0 allocs/rec	   5588143 rec/s	       0 B/op	       0 allocs/op
ok  	github.com/domino5g/domino/internal/trace	0.1s
`
	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader(input), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if doc.Benchmarks[1].Name != "BenchmarkEngineSchedule" || doc.Benchmarks[1].Metrics["events/s"] != 11631825 {
		t.Fatalf("scheduler microbenchmark parsed wrong: %+v", doc.Benchmarks[1])
	}
	codec := doc.Benchmarks[2]
	if codec.Name != "BenchmarkCodecEncode/fast" || codec.Metrics["rec/s"] != 5588143 {
		t.Fatalf("codec microbenchmark parsed wrong: %+v", codec)
	}
	if v, ok := codec.Metrics["allocs/rec"]; !ok || v != 0 {
		t.Fatalf("allocs/rec metric lost: %+v", codec.Metrics)
	}
}

// TestBestOfMerge pins the -count=N noise armor: repeated runs of one
// benchmark collapse into a single entry keeping the max of throughput
// metrics and the min of cost metrics.
func TestBestOfMerge(t *testing.T) {
	input := `BenchmarkScenarioTraceGen/amarisoft-8 	       3	  20000000 ns/op	 1000000 records/s	      700 sim-s/s
BenchmarkScenarioTraceGen/amarisoft-8 	       3	  14000000 ns/op	 1500000 records/s	     1400 sim-s/s
BenchmarkScenarioTraceGen/amarisoft-8 	       3	  16000000 ns/op	 1200000 records/s	     1100 sim-s/s
`
	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader(input), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("merged to %d entries, want 1", len(doc.Benchmarks))
	}
	m := doc.Benchmarks[0].Metrics
	if m["records/s"] != 1500000 || m["sim-s/s"] != 1400 || m["ns/op"] != 14000000 {
		t.Fatalf("best-of merge wrong: %v", m)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  	github.com/domino5g/domino	12.3s",
		"goos: linux", "Benchmark", "BenchmarkX notanumber",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted noise line %q", line)
		}
	}
}
