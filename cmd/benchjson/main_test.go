package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/domino5g/domino
BenchmarkStreamAnalyzer/stream-8         	       1	  3072625 ns/op	 1177 B/op	       5 allocs/op	 3303142 records/s	    4519 max-buffered-samples
BenchmarkScenarioTraceGen/harq-storm-8   	       1	182944708 ns/op	  812345 records/s	 109.3 sim-s/s
BenchmarkScenarioTraceGen/rtcp-stall     	       2	 90000000 ns/op
PASS
ok  	github.com/domino5g/domino	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int64              `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkStreamAnalyzer/stream" || first.Iterations != 1 {
		t.Fatalf("first benchmark parsed wrong: %+v", first)
	}
	if first.Metrics["records/s"] != 3303142 || first.Metrics["ns/op"] != 3072625 {
		t.Fatalf("metrics parsed wrong: %v", first.Metrics)
	}
	// A sub-benchmark without the -N suffix keeps its full name.
	if doc.Benchmarks[2].Name != "BenchmarkScenarioTraceGen/rtcp-stall" || doc.Benchmarks[2].Iterations != 2 {
		t.Fatalf("third benchmark parsed wrong: %+v", doc.Benchmarks[2])
	}
}

// TestEmptyInputFails pins the hollow-artifact guard: input with no
// benchmark lines (swallowed upstream failure, bad -bench pattern)
// must exit nonzero instead of emitting an empty document.
func TestEmptyInputFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(strings.NewReader("goos: linux\nPASS\n"), &stdout, &stderr); code == 0 {
		t.Fatal("empty bench input accepted")
	}
	if !strings.Contains(stderr.String(), "no benchmark result lines") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  	github.com/domino5g/domino	12.3s",
		"goos: linux", "Benchmark", "BenchmarkX notanumber",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted noise line %q", line)
		}
	}
}
