// Command experiments regenerates the paper's tables and figures from
// the simulator substrate.
//
// Usage:
//
//	experiments                  # run everything, sequentially
//	experiments -parallel        # run everything across all cores
//	experiments -workers 4 fig10 table2
//	experiments -duration 120 -sessions 2 fig10
//	experiments -list
//
// Artifact text is deterministic in -seed and independent of the
// worker count; stdout is byte-identical between sequential and
// parallel runs. Per-artifact wall-clock times go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/domino5g/domino/internal/experiments"
	"github.com/domino5g/domino/internal/sim"
)

func main() {
	duration := flag.Int("duration", 60, "per-session call duration in seconds")
	sessions := flag.Int("sessions", 1, "sessions per cell for aggregate statistics")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 1, "worker-pool width (0 = all cores)")
	par := flag.Bool("parallel", false, "shorthand for -workers 0: use all cores")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	w := *workers
	if (*par && !workersSet) || w <= 0 {
		// -parallel is shorthand for "all cores" but an explicit
		// -workers N always wins.
		w = runtime.GOMAXPROCS(0)
	}
	opts := experiments.Options{
		Duration: sim.Time(*duration) * sim.Second,
		Sessions: *sessions,
		Seed:     *seed,
		Workers:  w,
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	start := time.Now()
	if w == 1 {
		// Sequential runs stream each artifact as it completes, so
		// long regenerations show progress and a late failure keeps
		// the artifacts already printed.
		for _, id := range ids {
			res, err := experiments.Run(id, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			printResult(res)
		}
	} else {
		results, err := experiments.RunParallel(ids, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		for _, res := range results {
			printResult(res)
		}
	}
	fmt.Fprintf(os.Stderr, "%-10s %8.3fs  (%d artifacts, %d workers)\n",
		"wall", time.Since(start).Seconds(), len(ids), w)
}

func printResult(res experiments.Result) {
	fmt.Printf("### %s\n", res.Title)
	fmt.Printf("    [%s]\n\n", res.PaperRef)
	fmt.Println(res.Text)
	fmt.Println()
	fmt.Fprintf(os.Stderr, "%-10s %8.3fs\n", res.ID, res.Elapsed.Seconds())
}
