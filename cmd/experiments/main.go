// Command experiments regenerates the paper's tables and figures from
// the simulator substrate.
//
// Usage:
//
//	experiments                  # run everything
//	experiments fig10 table2     # run selected artifacts
//	experiments -duration 120 -sessions 2 fig10
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/domino5g/domino/internal/experiments"
	"github.com/domino5g/domino/internal/sim"
)

func main() {
	duration := flag.Int("duration", 60, "per-session call duration in seconds")
	sessions := flag.Int("sessions", 1, "sessions per cell for aggregate statistics")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{
		Duration: sim.Time(*duration) * sim.Second,
		Sessions: *sessions,
		Seed:     *seed,
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("### %s\n", res.Title)
		fmt.Printf("    [%s]\n\n", res.PaperRef)
		fmt.Println(res.Text)
		fmt.Println()
	}
}
