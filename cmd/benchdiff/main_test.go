package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{"benchmarks":[
	{"name":"BenchmarkScenarioTraceGen/amarisoft","iterations":1,"metrics":{"ns/op":1e7,"records/s":1000000,"sim-s/s":1000}},
	{"name":"BenchmarkCodecEncode/fast","iterations":1,"metrics":{"rec/s":5000000,"allocs/rec":0}},
	{"name":"BenchmarkCodecDecode/fast","iterations":1,"metrics":{"rec/s":2000000,"allocs/rec":1}}
]}`

func runDiff(t *testing.T, baseline, current string, extra ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	b := writeDoc(t, dir, "base.json", baseline)
	c := writeDoc(t, dir, "cur.json", current)
	var stdout, stderr bytes.Buffer
	args := append([]string{"-baseline", b, "-current", c}, extra...)
	code := run(args, &stdout, &stderr)
	return code, stdout.String() + stderr.String()
}

func TestBenchdiffPass(t *testing.T) {
	current := strings.ReplaceAll(baselineDoc, `"sim-s/s":1000`, `"sim-s/s":950`)
	code, out := runDiff(t, baselineDoc, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("no PASS in report:\n%s", out)
	}
}

func TestBenchdiffThroughputRegression(t *testing.T) {
	current := strings.ReplaceAll(baselineDoc, `"sim-s/s":1000`, `"sim-s/s":600`)
	code, out := runDiff(t, baselineDoc, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "sim-s/s") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestBenchdiffNsOpNotGated(t *testing.T) {
	// ns/op tripling alone must not fail the gate (throughput metrics
	// carry the contract).
	current := strings.ReplaceAll(baselineDoc, `"ns/op":1e7`, `"ns/op":3e7`)
	code, out := runDiff(t, baselineDoc, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (ns/op is not gated)\n%s", code, out)
	}
}

func TestBenchdiffAllocRegression(t *testing.T) {
	// allocs/rec growing 1 -> 2 is a 100% regression on a lower-better
	// metric.
	current := strings.ReplaceAll(baselineDoc, `"rec/s":2000000,"allocs/rec":1`, `"rec/s":2000000,"allocs/rec":2`)
	code, out := runDiff(t, baselineDoc, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "allocs/rec") {
		t.Fatalf("alloc regression not reported:\n%s", out)
	}
}

func TestBenchdiffZeroAllocContract(t *testing.T) {
	// A zero-alloc baseline must reject a real per-record allocation…
	current := strings.ReplaceAll(baselineDoc, `"rec/s":5000000,"allocs/rec":0`, `"rec/s":5000000,"allocs/rec":1`)
	code, out := runDiff(t, baselineDoc, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkCodecEncode/fast") {
		t.Fatalf("zero-alloc break not reported:\n%s", out)
	}
	// …but tolerate sub-half-alloc measurement noise.
	noisy := strings.ReplaceAll(baselineDoc, `"rec/s":5000000,"allocs/rec":0`, `"rec/s":5000000,"allocs/rec":0.002`)
	if code, out := runDiff(t, baselineDoc, noisy); code != 0 {
		t.Fatalf("noise tripped the zero-alloc gate: exit = %d\n%s", code, out)
	}
}

func TestBenchdiffZeroByteBaseline(t *testing.T) {
	// A zero-B/op baseline must catch a large amortized buffer that
	// rounds to 0 allocs/op…
	base := strings.ReplaceAll(baselineDoc, `"rec/s":5000000,"allocs/rec":0`, `"rec/s":5000000,"allocs/rec":0,"B/op":0`)
	grown := strings.ReplaceAll(baselineDoc, `"rec/s":5000000,"allocs/rec":0`, `"rec/s":5000000,"allocs/rec":0,"B/op":300`)
	code, out := runDiff(t, base, grown)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (B/op grew from zero)\n%s", code, out)
	}
	if !strings.Contains(out, "B/op") {
		t.Fatalf("B/op regression not reported:\n%s", out)
	}
	// …while a few stray bytes pass.
	noisy := strings.ReplaceAll(baselineDoc, `"rec/s":5000000,"allocs/rec":0`, `"rec/s":5000000,"allocs/rec":0,"B/op":8`)
	if code, out := runDiff(t, base, noisy); code != 0 {
		t.Fatalf("byte noise tripped the gate: exit = %d\n%s", code, out)
	}
}

func TestBenchdiffVanishedBenchmarkFails(t *testing.T) {
	current := `{"benchmarks":[
		{"name":"BenchmarkScenarioTraceGen/amarisoft","iterations":1,"metrics":{"records/s":1000000,"sim-s/s":1000}},
		{"name":"BenchmarkCodecEncode/fast","iterations":1,"metrics":{"rec/s":5000000,"allocs/rec":0}}
	]}`
	code, out := runDiff(t, baselineDoc, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (vanished benchmark)\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkCodecDecode/fast") || !strings.Contains(out, "missing") {
		t.Fatalf("vanished benchmark not reported:\n%s", out)
	}
}

func TestBenchdiffNewBenchmarkIsAdvisory(t *testing.T) {
	current := strings.Replace(baselineDoc, `]}`, `,
		{"name":"BenchmarkBrandNew","iterations":1,"metrics":{"rec/s":1}}]}`, 1)
	code, out := runDiff(t, baselineDoc, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (new benchmark is advisory)\n%s", code, out)
	}
	if !strings.Contains(out, "unbaselined") {
		t.Fatalf("new benchmark not surfaced:\n%s", out)
	}
}

func TestBenchdiffImprovementHint(t *testing.T) {
	current := strings.ReplaceAll(baselineDoc, `"sim-s/s":1000`, `"sim-s/s":2000`)
	code, out := runDiff(t, baselineDoc, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "re-baselining") {
		t.Fatalf("improvement hint missing:\n%s", out)
	}
}

func TestBenchdiffGateSummaryLine(t *testing.T) {
	// The report always ends with the one-line gate summary.
	code, out := runDiff(t, baselineDoc, baselineDoc)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "gate summary: PASS") || !strings.Contains(last, "6 gated metric(s) compared, 6 ok, 0 regressed") {
		t.Fatalf("summary line wrong: %q", last)
	}

	// Regressions and vanished benchmarks flip the verdict and counts.
	current := `{"benchmarks":[
		{"name":"BenchmarkScenarioTraceGen/amarisoft","iterations":1,"metrics":{"ns/op":1e7,"records/s":1000000,"sim-s/s":600}},
		{"name":"BenchmarkCodecEncode/fast","iterations":1,"metrics":{"rec/s":5000000,"allocs/rec":0}}
	]}`
	code, out = runDiff(t, baselineDoc, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	lines = strings.Split(strings.TrimRight(out, "\n"), "\n")
	last = lines[len(lines)-1]
	if !strings.HasPrefix(last, "gate summary: FAIL") || !strings.Contains(last, "1 regressed") || !strings.Contains(last, "1 missing") {
		t.Fatalf("summary line wrong: %q", last)
	}
}

func TestBenchdiffThreshold(t *testing.T) {
	// 25% drop passes at the default 30% gate, fails at 20%.
	current := strings.ReplaceAll(baselineDoc, `"sim-s/s":1000`, `"sim-s/s":750`)
	if code, out := runDiff(t, baselineDoc, current); code != 0 {
		t.Fatalf("exit = %d, want 0 at default gate\n%s", code, out)
	}
	if code, out := runDiff(t, baselineDoc, current, "-max-regress", "0.2"); code != 1 {
		t.Fatalf("exit = %d, want 1 at 20%% gate\n%s", code, out)
	}
}

func TestBenchdiffFloorHolds(t *testing.T) {
	// A floor the current run clears passes and is reported.
	code, out := runDiff(t, baselineDoc, baselineDoc, "-floor", "BenchmarkCodecDecode/fast:rec/s=1500000")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "1/1 floor(s) held") {
		t.Fatalf("floor not reported in summary:\n%s", out)
	}
}

func TestBenchdiffFloorViolated(t *testing.T) {
	code, out := runDiff(t, baselineDoc, baselineDoc, "-floor", "BenchmarkCodecDecode/fast:rec/s=3000000")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "BELOW FLOOR") || !strings.Contains(out, "floor contract(s) not met") {
		t.Fatalf("floor violation not reported:\n%s", out)
	}
}

func TestBenchdiffFloorLowerBetter(t *testing.T) {
	// For lower-better units the floor is a ceiling: allocs/rec 1 passes
	// a <=2 contract and fails a <=0.5 one.
	if code, out := runDiff(t, baselineDoc, baselineDoc, "-floor", "BenchmarkCodecDecode/fast:allocs/rec=2"); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if code, out := runDiff(t, baselineDoc, baselineDoc, "-floor", "BenchmarkCodecDecode/fast:allocs/rec=0.5"); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
}

func TestBenchdiffFloorOnUnbaselinedBenchmark(t *testing.T) {
	// Floors gate benchmarks that have no baseline entry yet — that is
	// their point: absolute contracts for new fast paths.
	current := strings.Replace(baselineDoc, `]}`, `,
		{"name":"BenchmarkBrandNew","iterations":1,"metrics":{"rec/s":4000000}}]}`, 1)
	if code, out := runDiff(t, baselineDoc, current, "-floor", "BenchmarkBrandNew:rec/s=3000000"); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if code, out := runDiff(t, baselineDoc, current, "-floor", "BenchmarkBrandNew:rec/s=5000000"); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
}

func TestBenchdiffFloorMissingBenchmarkFails(t *testing.T) {
	code, out := runDiff(t, baselineDoc, baselineDoc, "-floor", "BenchmarkNope:rec/s=1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (floored benchmark absent)\n%s", code, out)
	}
	if !strings.Contains(out, "missing from current run") {
		t.Fatalf("missing floored benchmark not reported:\n%s", out)
	}
}

func TestBenchdiffFloorFlagErrors(t *testing.T) {
	dir := t.TempDir()
	b := writeDoc(t, dir, "base.json", baselineDoc)
	c := writeDoc(t, dir, "cur.json", baselineDoc)
	for _, bad := range []string{
		"no-colon=1",              // missing unit separator
		"Name:rec/s",              // missing value
		"Name:rec/s=zero",         // non-numeric value
		"Name:rec/s=-5",           // non-positive value
		"Name:ns/op=100",          // ns/op is not a gated unit
		":rec/s=1", "Name:=1", "", // empty pieces
	} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-baseline", b, "-current", c, "-floor", bad}, &stdout, &stderr); code != 2 {
			t.Fatalf("floor %q: exit = %d, want 2", bad, code)
		}
	}
}

func TestBenchdiffReportFile(t *testing.T) {
	dir := t.TempDir()
	b := writeDoc(t, dir, "base.json", baselineDoc)
	c := writeDoc(t, dir, "cur.json", baselineDoc)
	report := filepath.Join(dir, "report.txt")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", b, "-current", c, "-o", report}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != stdout.String() {
		t.Fatal("report file differs from stdout")
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -current: exit = %d, want 2", code)
	}
	if code := run([]string{"-baseline", "nope.json", "-current", "also-nope.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing files: exit = %d, want 2", code)
	}
	dir := t.TempDir()
	b := writeDoc(t, dir, "base.json", baselineDoc)
	c := writeDoc(t, dir, "cur.json", baselineDoc)
	if code := run([]string{"-baseline", b, "-current", c, "-max-regress", "1.5"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad threshold: exit = %d, want 2", code)
	}
}
