// Command benchdiff compares a fresh benchmark snapshot (benchjson
// output) against a committed baseline and fails when performance
// regressed beyond a threshold — the enforcement half of the perf
// trajectory that benchjson records.
//
// Usage:
//
//	benchdiff -baseline BENCH_scenarios.json -current BENCH_fresh.json \
//	    [-max-regress 0.30] [-floor 'Name:unit=value' ...] [-o BENCH_diff.txt]
//
// Gating is direction-aware and restricted to metrics that encode a
// performance contract:
//
//   - throughput metrics (any unit ending in "/s": records/s, sim-s/s,
//     events/s, rec/s) must not drop more than the threshold;
//   - allocation metrics (allocs/op, allocs/rec, B/op) must not grow
//     more than the threshold.
//
// ns/op is deliberately not gated: every throughput metric above is
// derived from the same clock, and ns/op additionally appears on lines
// (like artifact-regeneration smoke benchmarks) whose runtime is not a
// contract. Benchmarks present only in the baseline fail the diff (a
// silently vanished benchmark is how perf contracts rot); benchmarks
// present only in the current run are reported as unbaselined, and
// improvements beyond the threshold are flagged as re-baseline hints.
//
// Relative gating cannot express "this new path must clear an absolute
// bar", so -floor pins one: each (repeatable) -floor Name:unit=value
// requires the named benchmark's metric in the CURRENT run to be at
// least value for higher-better units ("/s") and at most value for
// lower-better ones. A floored benchmark missing from the current run
// fails — a floor is a contract, not a hint — and floors apply whether
// or not the benchmark is baselined.
//
// Exit codes: 0 pass, 1 regression (or vanished benchmark), 2 usage or
// I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// document mirrors cmd/benchjson's output schema.
type document struct {
	Benchmarks []benchResult `json:"benchmarks"`
}

type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// direction classifies how a metric should be compared.
type direction int

const (
	skip direction = iota
	higherBetter
	lowerBetter
)

func metricDirection(unit string) direction {
	switch {
	case strings.HasSuffix(unit, "/s"):
		return higherBetter
	case unit == "allocs/op" || unit == "allocs/rec" || unit == "B/op":
		return lowerBetter
	default:
		return skip
	}
}

// delta is one gated comparison result.
type delta struct {
	bench, unit         string
	baseline, current   float64
	change              float64 // signed relative change, positive = better
	regressed, improved bool
}

// floor is one absolute -floor contract: the named benchmark's metric
// must clear value in the current run.
type floor struct {
	bench, unit string
	value       float64
}

// floorFlags collects repeated -floor arguments.
type floorFlags []floor

func (f *floorFlags) String() string {
	parts := make([]string, len(*f))
	for i, fl := range *f {
		parts[i] = fmt.Sprintf("%s:%s=%g", fl.bench, fl.unit, fl.value)
	}
	return strings.Join(parts, ",")
}

func (f *floorFlags) Set(s string) error {
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("floor %q: want Name:unit=value", s)
	}
	unit, valStr, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("floor %q: want Name:unit=value", s)
	}
	var val float64
	if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
		return fmt.Errorf("floor %q: bad value %q", s, valStr)
	}
	if name == "" || unit == "" || val <= 0 {
		return fmt.Errorf("floor %q: name, unit and a positive value are required", s)
	}
	if metricDirection(unit) == skip {
		return fmt.Errorf("floor %q: unit %q is not a gated metric", s, unit)
	}
	*f = append(*f, floor{bench: name, unit: unit, value: val})
	return nil
}

// checkFloors evaluates every -floor contract against the current run,
// appending report lines and returning the failures.
func checkFloors(current map[string]benchResult, floors []floor, sb *strings.Builder) []string {
	var failures []string
	for _, fl := range floors {
		cur, ok := current[fl.bench]
		if ok {
			_, ok = cur.Metrics[fl.unit]
		}
		if !ok {
			failures = append(failures, fmt.Sprintf("%s [%s]: floored benchmark missing from current run", fl.bench, fl.unit))
			continue
		}
		cv := cur.Metrics[fl.unit]
		holds := cv >= fl.value
		cmp := ">="
		if metricDirection(fl.unit) == lowerBetter {
			holds = cv <= fl.value
			cmp = "<="
		}
		status := "ok"
		if !holds {
			status = "BELOW FLOOR"
			failures = append(failures, fmt.Sprintf("%s [%s]: %.4g, floor requires %s %.4g", fl.bench, fl.unit, cv, cmp, fl.value))
		}
		fmt.Fprintf(sb, "%-60s %-12s %12s %s %-10.4g measured %-10.4g %s\n", fl.bench, fl.unit, "floor", cmp, fl.value, cv, status)
	}
	return failures
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_scenarios.json", "committed baseline benchjson document")
	currentPath := fs.String("current", "", "fresh benchjson document to compare (required)")
	maxRegress := fs.Float64("max-regress", 0.30, "maximum tolerated relative regression (0.30 = 30%)")
	var floors floorFlags
	fs.Var(&floors, "floor", "absolute contract Name:unit=value the current run must clear (repeatable)")
	outPath := fs.String("o", "", "also write the report to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *currentPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -current is required")
		fs.Usage()
		return 2
	}
	if *maxRegress <= 0 || *maxRegress >= 1 {
		fmt.Fprintln(stderr, "benchdiff: -max-regress must be in (0,1)")
		return 2
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	report, failed := diff(baseline, current, *maxRegress, floors)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
	}
	fmt.Fprint(stdout, report)
	if failed {
		return 1
	}
	return 0
}

func load(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]benchResult, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Name] = b
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return out, nil
}

// diff renders the comparison report and reports whether the gate
// failed.
func diff(baseline, current map[string]benchResult, maxRegress float64, floors []floor) (string, bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	var regressions, vanished []string
	improvements, compared, newBenches := 0, 0, 0
	fmt.Fprintf(&sb, "benchdiff: gate at %.0f%% regression\n\n", maxRegress*100)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			vanished = append(vanished, name)
			continue
		}
		units := make([]string, 0, len(base.Metrics))
		for unit := range base.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			dir := metricDirection(unit)
			if dir == skip {
				continue
			}
			bv := base.Metrics[unit]
			cv, ok := cur.Metrics[unit]
			if !ok {
				vanished = append(vanished, name+" ["+unit+"]")
				continue
			}
			compared++
			d := compare(bv, cv, unit, dir, maxRegress)
			d.bench, d.unit = name, unit
			status := "ok"
			if d.regressed {
				status = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s [%s]: %.4g -> %.4g (%+.1f%%)", name, unit, bv, cv, d.change*100))
			} else if d.improved {
				status = "improved (consider re-baselining)"
				improvements++
			}
			fmt.Fprintf(&sb, "%-60s %-12s %12.4g -> %-12.4g %+6.1f%%  %s\n", name, unit, bv, cv, d.change*100, status)
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			newBenches++
			fmt.Fprintf(&sb, "%-60s (new, unbaselined — run `make bench-json` to add it)\n", name)
		}
	}
	floorFailures := checkFloors(current, floors, &sb)
	sb.WriteString("\n")
	failed := false
	if len(floorFailures) > 0 {
		failed = true
		fmt.Fprintf(&sb, "FAIL: %d floor contract(s) not met:\n", len(floorFailures))
		for _, f := range floorFailures {
			fmt.Fprintf(&sb, "  - %s\n", f)
		}
	}
	if len(vanished) > 0 {
		failed = true
		fmt.Fprintf(&sb, "FAIL: %d baselined benchmark(s)/metric(s) missing from the current run:\n", len(vanished))
		for _, v := range vanished {
			fmt.Fprintf(&sb, "  - %s\n", v)
		}
	}
	if len(regressions) > 0 {
		failed = true
		fmt.Fprintf(&sb, "FAIL: %d metric(s) regressed beyond %.0f%%:\n", len(regressions), maxRegress*100)
		for _, r := range regressions {
			fmt.Fprintf(&sb, "  - %s\n", r)
		}
	}
	if !failed {
		fmt.Fprintf(&sb, "PASS: no metric regressed beyond %.0f%% (%d improvement(s) beyond threshold)\n", maxRegress*100, improvements)
	}
	verdict := "PASS"
	if failed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "gate summary: %s — %d gated metric(s) compared, %d ok, %d regressed, %d improved, %d missing, %d unbaselined, %d/%d floor(s) held\n",
		verdict, compared, compared-len(regressions)-improvements, len(regressions), improvements, len(vanished), newBenches,
		len(floors)-len(floorFailures), len(floors))
	return sb.String(), failed
}

// compare evaluates one metric pair. change is signed so that positive
// is always an improvement regardless of direction.
func compare(baseline, current float64, unit string, dir direction, maxRegress float64) delta {
	d := delta{baseline: baseline, current: current}
	switch {
	case baseline == 0:
		// Zero baselines cannot regress relatively, so the zero-alloc
		// contract is enforced with absolute tolerances: half an
		// allocation for allocs/* (a real per-op allocation is always
		// ≥1; testing's integer rounding can hide up to that much) and
		// 16 bytes for B/op (catches a large amortized buffer that
		// rounds to 0 allocs/op), while measurement noise amortized
		// over thousands of records cannot trip CI.
		if dir == lowerBetter {
			switch {
			case strings.HasPrefix(unit, "allocs/") && current > 0.5,
				unit == "B/op" && current > 16:
				d.regressed = true
				d.change = -1
			}
		}
	case dir == higherBetter:
		d.change = current/baseline - 1
		d.regressed = d.change < -maxRegress
		d.improved = d.change > maxRegress
	case dir == lowerBetter:
		d.change = 1 - current/baseline
		d.regressed = d.change < -maxRegress
		d.improved = d.change > maxRegress
	}
	return d
}
