// Command dominolb fronts a fleet of dominod backends with a
// failure-aware routing tier: sessions are pinned to healthy nodes by
// rendezvous hashing, an active health checker distinguishes dead
// nodes from draining ones, sessions on lost nodes fail over through
// the resumable-ingest contract, and GET /metrics serves the whole
// fleet's merged Prometheus exposition.
//
// Usage:
//
//	dominolb -addr :8078 \
//	  -backend http://127.0.0.1:9101 \
//	  -backend http://127.0.0.1:9102,http://127.0.0.1:9103
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/domino5g/domino/internal/balancer"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// backendList collects repeatable, comma-splittable -backend flags.
type backendList []string

func (b *backendList) String() string { return strings.Join(*b, ",") }

func (b *backendList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*b = append(*b, u)
		}
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dominolb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8078", "listen address")
	var backends backendList
	fs.Var(&backends, "backend", "dominod base URL; repeatable, and each occurrence may hold a comma-separated list")
	healthInterval := fs.Duration("health-interval", time.Second, "active /healthz probe period")
	healthTimeout := fs.Duration("health-timeout", 500*time.Millisecond, "per-probe timeout")
	failThreshold := fs.Int("health-fails", 3, "consecutive probe failures that mark a backend down")
	replayMax := fs.Int64("replay-max", 64<<20, "per-session failover replay buffer cap in bytes (negative disables buffering)")
	scrapeTimeout := fs.Duration("scrape-timeout", 5*time.Second, "per-backend /metrics scrape timeout during federation")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	verbose := fs.Bool("v", false, "log per-session routing events (debug level)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(backends) == 0 {
		fmt.Fprintln(stderr, "dominolb: at least one -backend is required")
		return 2
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level})
	default:
		fmt.Fprintf(stderr, "dominolb: bad -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	lb, err := balancer.New(balancer.Options{
		Backends:       backends,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		FailThreshold:  *failThreshold,
		ReplayMax:      *replayMax,
		ScrapeTimeout:  *scrapeTimeout,
		Log:            logger,
	})
	if err != nil {
		fmt.Fprintln(stderr, "dominolb:", err)
		return 1
	}
	defer lb.Close()

	// Like dominod, ReadTimeout stays 0: proxied ingest bodies are
	// long-lived streams.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           lb.Routes(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "backends", len(backends))
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "dominolb:", err)
		return 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Warn("shutdown deadline exceeded", "err", err)
		}
		logger.Info("shut down")
		return 0
	}
}
