// Command tracegen simulates a two-party WebRTC call over one of the
// paper's 5G cell presets — or over any registered or user-supplied
// scenario — and writes the resulting cross-layer trace as JSONL or as
// the compact binary columnar format for analysis with cmd/domino.
//
// Usage:
//
//	tracegen -cell amarisoft -duration 60 -seed 7 -o call.jsonl
//	tracegen -scenario midcall-snr-collapse -duration 40 -o collapse.jsonl
//	tracegen -format binary -o call.dmnt
//	tracegen -scenario-file examples/scenarios/custom-degraded-cell.json
//	tracegen -upload http://127.0.0.1:8077 -session call-7 -retries 5
//	tracegen -list-scenarios
//
// -cell selects a bare Table 1 preset; -scenario a registered scenario
// by name; -scenario-file a declarative scenario JSON. The three are
// mutually exclusive; with none given the amarisoft preset is used.
// -format picks the trace encoding: jsonl (default, human-greppable)
// or binary (compact columnar, the dominod fast path); cmd/domino and
// dominod sniff the format on read, so either feeds the same pipeline.
//
// -upload streams the generated trace to a running dominod instead of
// (or in addition to) writing a file, using the resumable ingest
// protocol: failed uploads retry with seeded, jittered exponential
// backoff (-retries, -backoff) and resume from the server's watermark
// rather than re-analyzing records it already accepted.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cell := fs.String("cell", "", "cell preset (default amarisoft); see -list-scenarios for scenarios instead")
	scenarioName := fs.String("scenario", "", "registered scenario name (mutually exclusive with -cell)")
	scenarioFile := fs.String("scenario-file", "", "path to a scenario JSON file (mutually exclusive with -cell/-scenario)")
	listScenarios := fs.Bool("list-scenarios", false, "print the registered scenario catalog and exit")
	duration := fs.Int("duration", 60, "call duration in seconds (must be > 0)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	format := fs.String("format", "jsonl", "trace encoding: jsonl or binary")
	out := fs.String("o", "-", "output path ('-' for stdout)")
	csvDir := fs.String("csv", "", "also write packets.csv/dci.csv/stats.csv into this directory")
	upload := fs.String("upload", "", "dominod base URL to upload the trace to (e.g. http://127.0.0.1:8077)")
	session := fs.String("session", "", "session ID for -upload (default <scenario>-<seed>)")
	retries := fs.Int("retries", 5, "with -upload: retry a failed upload this many times")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "with -upload: base retry delay (doubles per attempt, jittered)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	usageErr := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "tracegen: "+format+"\n", a...)
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	if *format != "jsonl" && *format != "binary" {
		return usageErr("-format must be jsonl or binary, got %q", *format)
	}
	if *listScenarios {
		for _, s := range domino.Scenarios() {
			fmt.Fprintf(stdout, "%-24s cell=%-12s %s\n", s.Name, s.Cell, s.Description)
		}
		return 0
	}
	if *duration <= 0 {
		return usageErr("-duration must be > 0, got %d", *duration)
	}
	selected := 0
	for _, f := range []string{*cell, *scenarioName, *scenarioFile} {
		if f != "" {
			selected++
		}
	}
	if selected > 1 {
		return usageErr("-cell, -scenario, and -scenario-file are mutually exclusive")
	}

	// Resolve the workload: scenario file, registered scenario, or bare
	// cell preset (bare presets run through their registered scenario so
	// every trace is labeled).
	var sc domino.Scenario
	switch {
	case *scenarioFile != "":
		f, err := os.Open(*scenarioFile)
		if err != nil {
			return fail(err)
		}
		sc, err = domino.ParseScenario(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	case *scenarioName != "":
		s, err := domino.ScenarioByName(*scenarioName)
		if err != nil {
			return usageErr("%v", err)
		}
		sc = s
	default:
		name := *cell
		if name == "" {
			name = "amarisoft"
		}
		cfg, err := domino.PresetByName(name)
		if err != nil {
			return usageErr("%v", err)
		}
		sc = presetScenario(cfg)
	}

	sess, err := domino.NewScenarioSession(sc, *seed)
	if err != nil {
		return fail(err)
	}
	set := sess.Run(domino.Time(*duration) * domino.Second)

	write := domino.WriteTrace
	if *format == "binary" {
		write = domino.WriteTraceBinary
	}
	if *upload != "" {
		// Serialize once; the ingest client owns retry and resume.
		var buf bytes.Buffer
		if err := write(&buf, set); err != nil {
			return fail(err)
		}
		contentType := ingest.ContentTypeJSONL
		if *format == "binary" {
			contentType = ingest.ContentTypeBinary
		}
		id := *session
		if id == "" {
			id = fmt.Sprintf("%s-%d", sc.Name, *seed)
		}
		client := ingest.New(ingest.Options{
			BaseURL: *upload,
			Retries: *retries,
			Backoff: *backoff,
			Seed:    int64(*seed),
		})
		stats, err := client.Upload(context.Background(), id, contentType, buf.Bytes())
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "tracegen: uploaded session %s to %s (%d attempt(s), %d resumed, %d shed-retries)\n",
			id, *upload, stats.Attempts, stats.Resumed, stats.ShedRetries)
	}
	if *upload == "" || *out != "-" {
		w := io.Writer(stdout)
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := write(w, set); err != nil {
			return fail(err)
		}
	}
	if *csvDir != "" {
		if err := trace.WriteCSVBundle(func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		}, set); err != nil {
			return fail(err)
		}
	}
	c := set.Counts()
	fmt.Fprintf(stderr, "tracegen: %s (scenario %s), %ds: %d DCI, %d gNB, %d packets, %d stats records\n",
		set.CellName, sc.Name, *duration, c.DCI, c.GNBLog, c.Packets, c.WebRTC)
	return 0
}

// presetScenario maps a resolved cell preset to its registered
// dynamics-free scenario, so bare -cell traces carry the canonical
// scenario label; an unregistered cell gets an ad hoc wrapper.
func presetScenario(cfg domino.CellConfig) domino.Scenario {
	for _, s := range domino.Scenarios() {
		if len(s.Dynamics) != 0 {
			continue
		}
		if c, err := s.CellConfig(); err == nil && c.Name == cfg.Name {
			return s
		}
	}
	return domino.Scenario{Name: cfg.Name, Cell: cfg.Name}
}
