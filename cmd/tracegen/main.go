// Command tracegen simulates a two-party WebRTC call over one of the
// paper's 5G cell presets and writes the resulting cross-layer trace
// as JSONL for analysis with cmd/domino.
//
// Usage:
//
//	tracegen -cell amarisoft -duration 60 -seed 7 -o call.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/trace"
)

func main() {
	cell := flag.String("cell", "amarisoft", "cell preset: fdd, tdd, amarisoft, mosolabs")
	duration := flag.Int("duration", 60, "call duration in seconds")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("o", "-", "output path ('-' for stdout)")
	csvDir := flag.String("csv", "", "also write packets.csv/dci.csv/stats.csv into this directory")
	flag.Parse()

	cfg, err := domino.PresetByName(*cell)
	if err != nil {
		fatal(err)
	}
	sess, err := domino.NewSession(domino.DefaultSessionConfig(cfg, *seed))
	if err != nil {
		fatal(err)
	}
	set := sess.Run(domino.Time(*duration) * domino.Second)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := domino.WriteTrace(w, set); err != nil {
		fatal(err)
	}
	if *csvDir != "" {
		if err := trace.WriteCSVBundle(func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		}, set); err != nil {
			fatal(err)
		}
	}
	c := set.Counts()
	fmt.Fprintf(os.Stderr, "tracegen: %s, %ds: %d DCI, %d gNB, %d packets, %d stats records\n",
		cfg.Name, *duration, c.DCI, c.GNBLog, c.Packets, c.WebRTC)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
