package main

// Upload-mode coverage: tracegen -upload must survive a flaky dominod,
// retrying with backoff and eventually delivering the full trace.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// flakyIngest fails the first n upload attempts with a retryable
// status, then accepts, recording every delivered body.
type flakyIngest struct {
	mu       sync.Mutex
	failLeft int
	attempts int
	body     []byte
}

func (f *flakyIngest) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.attempts++
		if f.failLeft > 0 {
			f.failLeft--
			w.Header().Set("Retry-After", "0")
			http.Error(w, "simulated outage", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.body = body
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"state":"done"}`)
	})
	mux.HandleFunc("GET /sessions/{id}/watermark", func(w http.ResponseWriter, r *http.Request) {
		// Nothing accepted yet: clients restart from record 0.
		http.NotFound(w, r)
	})
	return mux
}

func TestUploadRetriesAgainstFlakyServer(t *testing.T) {
	flaky := &flakyIngest{failLeft: 2}
	ts := httptest.NewServer(flaky.handler())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-cell", "mosolabs", "-duration", "2", "-seed", "9",
		"-upload", ts.URL, "-session", "flaky-call",
		"-retries", "4", "-backoff", "1ms",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if flaky.attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", flaky.attempts)
	}
	if !strings.Contains(stderr.String(), "uploaded session flaky-call") {
		t.Fatalf("stderr missing upload summary: %s", stderr.String())
	}
	// The summary surfaces the full client Stats: both 503 rounds are
	// shed retries, and nothing resumed (the watermark stub reports 0).
	if !strings.Contains(stderr.String(), "(3 attempt(s), 0 resumed, 2 shed-retries)") {
		t.Fatalf("summary missing client stats: %s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("upload-only run wrote %d bytes to stdout", stdout.Len())
	}

	// The delivered body is the same trace a plain file run produces.
	var fileOut, fileErr bytes.Buffer
	if code := run([]string{"-cell", "mosolabs", "-duration", "2", "-seed", "9"}, &fileOut, &fileErr); code != 0 {
		t.Fatalf("file run exit %d: %s", code, fileErr.String())
	}
	if !bytes.Equal(flaky.body, fileOut.Bytes()) {
		t.Fatalf("uploaded body (%d bytes) differs from generated trace (%d bytes)",
			len(flaky.body), fileOut.Len())
	}
}

func TestUploadExhaustsRetries(t *testing.T) {
	flaky := &flakyIngest{failLeft: 99}
	ts := httptest.NewServer(flaky.handler())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-cell", "mosolabs", "-duration", "1",
		"-upload", ts.URL, "-retries", "2", "-backoff", "1ms",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "retries exhausted") {
		t.Fatalf("stderr missing retry diagnosis: %s", stderr.String())
	}
	if flaky.attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3 (initial + 2 retries)", flaky.attempts)
	}
}
