package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/domino5g/domino"
)

// TestFlagValidation is the table-driven CLI contract, mirroring the
// cmd/domino flag tests: exit codes and messages for every flag
// combination, including the unknown-name paths that must list the
// valid cells/scenarios.
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	badCell := filepath.Join(dir, "badcell.json")
	if err := os.WriteFile(badCell, []byte(`{"name":"x","cell":"nokia"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		code       int
		wantStdout string
		wantStderr string
	}{
		{
			name:       "unknown flag",
			args:       []string{"-bogus"},
			code:       2,
			wantStderr: "flag provided but not defined",
		},
		{
			name:       "zero duration",
			args:       []string{"-duration", "0"},
			code:       2,
			wantStderr: "-duration must be > 0",
		},
		{
			name:       "negative duration",
			args:       []string{"-duration", "-3"},
			code:       2,
			wantStderr: "-duration must be > 0",
		},
		{
			name:       "unknown cell lists valid names",
			args:       []string{"-cell", "nokia", "-duration", "1"},
			code:       2,
			wantStderr: "valid: tmobile-tdd, tmobile-fdd, amarisoft, mosolabs",
		},
		{
			name:       "unknown scenario lists valid names",
			args:       []string{"-scenario", "tsunami", "-duration", "1"},
			code:       2,
			wantStderr: "midcall-snr-collapse",
		},
		{
			name:       "cell and scenario are exclusive",
			args:       []string{"-cell", "amarisoft", "-scenario", "harq-storm"},
			code:       2,
			wantStderr: "mutually exclusive",
		},
		{
			name:       "scenario and scenario-file are exclusive",
			args:       []string{"-scenario", "harq-storm", "-scenario-file", badJSON},
			code:       2,
			wantStderr: "mutually exclusive",
		},
		{
			name:       "list scenarios",
			args:       []string{"-list-scenarios"},
			code:       0,
			wantStdout: "midcall-snr-collapse",
		},
		{
			name:       "nonexistent scenario file",
			args:       []string{"-scenario-file", filepath.Join(dir, "nope.json"), "-duration", "1"},
			code:       1,
			wantStderr: "no such file",
		},
		{
			name:       "malformed scenario file",
			args:       []string{"-scenario-file", badJSON, "-duration", "1"},
			code:       1,
			wantStderr: "decoding",
		},
		{
			name:       "scenario file with unknown cell",
			args:       []string{"-scenario-file", badCell, "-duration", "1"},
			code:       1,
			wantStderr: "unknown cell",
		},
		{
			name:       "unwritable output",
			args:       []string{"-duration", "1", "-o", filepath.Join(dir, "missing", "out.jsonl")},
			code:       1,
			wantStderr: "no such file",
		},
		{
			name:       "unknown format",
			args:       []string{"-format", "protobuf", "-duration", "1"},
			code:       2,
			wantStderr: "-format must be jsonl or binary",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.code, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestGenerateByCellAliasAndScenario runs three short generations and
// checks the header labels: a cell alias resolves to its canonical
// registered scenario, a registered scenario keeps its name, and a
// scenario file keeps the file's name.
func TestGenerateByCellAliasAndScenario(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name     string
		args     []string
		wantCell string
		wantScen string
	}{
		{
			name:     "cell alias",
			args:     []string{"-cell", "fdd"},
			wantCell: `"cell_name":"T-Mobile 15MHz FDD"`,
			wantScen: `"scenario":"tmobile-fdd"`,
		},
		{
			name:     "registered scenario",
			args:     []string{"-scenario", "harq-storm"},
			wantCell: `"cell_name":"Amarisoft 20MHz TDD"`,
			wantScen: `"scenario":"harq-storm"`,
		},
		{
			name:     "scenario file",
			args:     []string{"-scenario-file", filepath.Join("..", "..", "examples", "scenarios", "custom-degraded-cell.json")},
			wantCell: `"cell_name":"T-Mobile 100MHz TDD"`,
			wantScen: `"scenario":"custom-degraded-cell"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".jsonl")
			var stdout, stderr bytes.Buffer
			args := append(tc.args, "-duration", "2", "-seed", "5", "-o", out)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "tracegen: ") {
				t.Fatalf("missing summary line: %s", stderr.String())
			}
			blob, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			header := string(bytes.SplitN(blob, []byte("\n"), 2)[0])
			if !strings.Contains(header, tc.wantCell) || !strings.Contains(header, tc.wantScen) {
				t.Fatalf("header %s\nwant %s and %s", header, tc.wantCell, tc.wantScen)
			}
		})
	}
}

// TestBinaryFormatRoundTrips generates the same call in both encodings
// and checks the binary output starts with the format magic, is
// smaller than its JSONL twin, and decodes to the identical record
// set.
func TestBinaryFormatRoundTrips(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "call.jsonl")
	binPath := filepath.Join(dir, "call.dmnt")
	for _, args := range [][]string{
		{"-duration", "3", "-seed", "11", "-o", jsonlPath},
		{"-format", "binary", "-duration", "3", "-seed", "11", "-o", binPath},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("%v: exit %d: %s", args, code, stderr.String())
		}
	}
	jsonlBlob, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	binBlob, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(binBlob, []byte("DMNTRCB1")) {
		t.Fatalf("binary output lacks the format magic: % x", binBlob[:16])
	}
	if len(binBlob) >= len(jsonlBlob) {
		t.Fatalf("binary (%d bytes) is not smaller than JSONL (%d bytes)", len(binBlob), len(jsonlBlob))
	}
	want, err := domino.ReadTrace(bytes.NewReader(jsonlBlob))
	if err != nil {
		t.Fatal(err)
	}
	got, err := domino.ReadTrace(bytes.NewReader(binBlob))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("binary trace decodes to a different set than its JSONL twin")
	}
}

// TestStdoutTraceIsAnalyzable pipes a default generation to a buffer
// and checks the stream shape (header first, records after).
func TestStdoutTraceIsAnalyzable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-duration", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	first := strings.SplitN(stdout.String(), "\n", 2)[0]
	if !strings.Contains(first, `"type":"header"`) || !strings.Contains(first, `"scenario":"amarisoft"`) {
		t.Fatalf("first line is not a labeled header: %s", first)
	}
	if stdout.Len() < 1000 {
		t.Fatalf("suspiciously small trace (%d bytes)", stdout.Len())
	}
}
