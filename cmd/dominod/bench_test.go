package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// benchIngest measures fleet-shaped ingest: many concurrent session
// uploads through the full HTTP path (Content-Type negotiation,
// sharded registry, pooled per-session analyzers, pipelined chunk
// steps on the work-stealing pool). Each iteration POSTs `sessions`
// concurrent streams of one pre-generated 10 s trace in the given wire
// format; records/s counts every data record analyzed across the fleet
// per wall-clock second.
func benchIngest(b *testing.B, contentType string, body []byte, recordsPerSession int) {
	const sessions = 16
	srv := newServer(testAnalyzer(b), serverOptions{MaxStreams: sessions, MaxSessions: 64})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, sessions)
		for j := 0; j < sessions; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				id := fmt.Sprintf("bench-%d-%d", i, j)
				resp, err := client.Post(ts.URL+"/ingest?session="+id, contentType, bytes.NewReader(body))
				if err != nil {
					errs[j] = err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					errs[j] = fmt.Errorf("ingest %s: status %d: %s", id, resp.StatusCode, msg)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
			}(j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(recordsPerSession*sessions*b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(sessions*b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// benchTraceRecords is the per-session data-record count of the
// benchmark trace.
func benchTraceRecords(set *trace.Set) int {
	c := set.Counts()
	return c.DCI + c.GNBLog + c.Packets + c.WebRTC
}

// BenchmarkDominodIngest is the JSONL compatibility-path ingest
// benchmark (the PR 5 baseline shape).
func BenchmarkDominodIngest(b *testing.B) {
	set, body := sessionTrace(b, ran.Amarisoft(), 21, 10*sim.Second)
	benchIngest(b, "application/jsonl", body, benchTraceRecords(set))
}

// BenchmarkDominodIngestBinary is the same fleet workload over the
// compact binary columnar format — the negotiated fast path.
func BenchmarkDominodIngestBinary(b *testing.B) {
	set, _ := sessionTrace(b, ran.Amarisoft(), 21, 10*sim.Second)
	benchIngest(b, "application/x-domino-trace", binaryTrace(b, set), benchTraceRecords(set))
}
