package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/sim"
)

// TestMetricsExposition pins the /metrics contract: the output is
// spec-valid Prometheus text exposition (HELP/TYPE metadata, counters
// suffixed _total, well-formed histograms) as checked by the same
// linter the CI smoke runs, and it carries the build-info and
// per-shard series.
func TestMetricsExposition(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2, FlightRec: 1024})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		_, body := sessionTrace(t, ran.Amarisoft(), uint64(60+i), 8*sim.Second)
		resp, err := http.Post(fmt.Sprintf("%s/ingest?session=m%d", ts.URL, i), "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest m%d: %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	errs, stats := obs.Lint(bytes.NewReader(body))
	for _, e := range errs {
		t.Errorf("exposition: %v", e)
	}
	if t.Failed() {
		t.Fatalf("full scrape:\n%s", body)
	}
	if stats.Samples == 0 || stats.Families == 0 {
		t.Fatalf("lint saw %d families / %d samples", stats.Families, stats.Samples)
	}

	text := string(body)
	for _, want := range []string{
		"# HELP dominod_sessions_total ",
		"# TYPE dominod_sessions_total counter",
		"# TYPE dominod_ingest_decode_seconds histogram",
		"dominod_ingest_step_seconds_bucket{le=\"+Inf\"}",
		"dominod_sessions_done_total 2",
		"dominod_node_events_total{node=",
		"dominod_shard_sessions{shard=\"0\"}",
		"domino_build_info{version=",
		fmt.Sprintf("go_version=%q", runtime.Version()),
		"dominod_analyzer_pool_hit_ratio ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestFlightRecorderDeterminism pins the flight-recorder replay-diff
// contract: two fresh servers fed the same fixed-seed session body
// produce byte-identical /debug/flightrec dumps once wall-clock
// timestamps are excluded (?wall=0). Everything else in an event —
// sequence, kind, sim time, name, count — is a pure function of the
// input stream.
func TestFlightRecorderDeterminism(t *testing.T) {
	const fleetNow = sim.Time(1_700_000_000_000_000)
	_, body := sessionTrace(t, ran.Amarisoft(), 40, 10*sim.Second)

	dump := func() string {
		srv := newServer(testAnalyzer(t), serverOptions{
			MaxStreams: 2, FlightRec: 4096,
			Now: func() sim.Time { return fleetNow },
		})
		ts := httptest.NewServer(srv.routes())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/ingest?session=det", "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %d", resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + "/debug/flightrec/det?wall=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flightrec: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	first, second := dump(), dump()
	if first != second {
		t.Fatalf("flight-recorder dumps diverge across identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	for _, kind := range []string{
		`"kind":"ingest_chunk"`, `"kind":"window_evaluated"`,
		`"kind":"node_fired"`, `"kind":"chain_run_closed"`, `"kind":"report_stored"`,
	} {
		if !strings.Contains(first, kind) {
			t.Fatalf("dump missing %s:\n%s", kind, first)
		}
	}
	if strings.Contains(first, `"wall_ns"`) {
		t.Fatal("?wall=0 dump still carries wall_ns")
	}
}

// TestFlightRecEndpointEdges covers the non-happy flight-recorder
// paths: the default dump carries wall clocks, unknown sessions 404,
// and a server with -flightrec 0 reports the recorder disabled.
func TestFlightRecEndpointEdges(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2, FlightRec: 256})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Mosolabs(), 9, 6*sim.Second)
	resp, err := http.Post(ts.URL+"/ingest?session=w", "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/debug/flightrec/w")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"wall_ns":`) {
		t.Fatalf("default dump has no wall_ns:\n%s", b)
	}

	resp, err = http.Get(ts.URL + "/debug/flightrec/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", resp.StatusCode)
	}

	off := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	tsOff := httptest.NewServer(off.routes())
	defer tsOff.Close()
	resp, err = http.Post(tsOff.URL+"/ingest?session=w", "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(tsOff.URL + "/debug/flightrec/w")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(b), "disabled") {
		t.Fatalf("disabled recorder: %d %s", resp.StatusCode, b)
	}
}

// TestHealthzBuildInfo pins the /healthz payload: readiness plus the
// same build identity surfaced by domino_build_info.
func TestHealthzBuildInfo(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 1})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	var hz struct {
		Status    string `json:"status"`
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("status %q", hz.Status)
	}
	if hz.Version == "" {
		t.Fatal("empty version")
	}
	if hz.GoVersion != runtime.Version() {
		t.Fatalf("go_version %q, want %q", hz.GoVersion, runtime.Version())
	}
}
