package main

// Fleet-tier acceptance: real dominod servers behind internal/balancer.
// The fleet chaos differential is the headline — N nodes, all
// scenarios in both wire formats, seeded backend kills mid-stream —
// and every session's final report must be byte-identical to clean
// single-node ingest. The drain test pins the SIGTERM semantics end to
// end, and the federation test pins /metrics = Merge(per-node scrapes).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/domino5g/domino/internal/balancer"
	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// fleetNode is one real dominod backend under balancer control.
type fleetNode struct {
	srv *server
	ts  *httptest.Server
}

func newFleetNode(t *testing.T, nodeID string) *fleetNode {
	t.Helper()
	srv := newServer(testAnalyzer(t), serverOptions{
		MaxStreams: 4,
		NodeID:     nodeID,
		Now:        func() sim.Time { return chaosFleetNow },
	})
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return &fleetNode{srv: srv, ts: ts}
}

// kill is the in-process kill -9: tear every open connection, stop
// accepting. The dominod never gets to drain or checkpoint.
func (n *fleetNode) kill() {
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// ownerOf finds which live node holds a session by probing the nodes
// directly (not through the balancer — its routing table is busy while
// a chunk is in flight).
func ownerOf(t *testing.T, nodes []*fleetNode, id string, deadline time.Duration) *fleetNode {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		for _, n := range nodes {
			resp, err := http.Get(n.ts.URL + "/sessions/" + id + "/watermark")
			if err != nil {
				continue
			}
			ok := resp.StatusCode == http.StatusOK
			drainClose(resp)
			if ok {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no node owns session %s", id)
	return nil
}

// splitLines cuts a JSONL payload into n record-aligned chunks and
// returns each chunk with its starting record index.
func splitLines(payload []byte, n int) (chunks [][]byte, seqs []int) {
	lines := bytes.SplitAfter(payload, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	per := (len(lines) + n - 1) / n
	for at := 0; at < len(lines); at += per {
		end := at + per
		if end > len(lines) {
			end = len(lines)
		}
		chunks = append(chunks, bytes.Join(lines[at:end], nil))
		seqs = append(seqs, at)
	}
	return chunks, seqs
}

// gatedReader yields head, then blocks until gate closes, then yields
// tail — it holds an upload mid-body while the test kills the backend
// under it.
type gatedReader struct {
	head, tail *bytes.Reader
	gate       <-chan struct{}
	gated      bool
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if g.head.Len() > 0 {
		return g.head.Read(p)
	}
	if !g.gated {
		<-g.gate
		g.gated = true
	}
	return g.tail.Read(p)
}

// TestFleetChaosDifferential is the acceptance test for the fleet
// tier: 4 dominod nodes behind the balancer, every scenario in both
// wire formats, two seeded mid-stream backend kills (one recovered by
// balancer-side watermark replay, one by the client's retryable-503
// resend path), and at the end every one of the 28 reports fetched
// through the balancer must equal the clean single-node report byte
// for byte.
func TestFleetChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos differential is the long acceptance test")
	}
	names := scenario.Names()
	if len(names) != 14 {
		t.Fatalf("scenario catalog has %d entries, the fleet matrix expects 14", len(names))
	}

	clean := newFleetNode(t, "clean")
	nodes := make([]*fleetNode, 4)
	var backends []string
	for i := range nodes {
		nodes[i] = newFleetNode(t, fmt.Sprintf("n%d", i))
		backends = append(backends, nodes[i].ts.URL)
	}
	lb, err := balancer.New(balancer.Options{
		Backends: backends,
		// Deterministic failure detection: the prober stays quiet (the
		// initial round marked everyone up) and the first data-path
		// error marks a node down.
		HealthInterval: time.Hour,
		FailThreshold:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	lbTS := httptest.NewServer(lb.Routes())
	defer lbTS.Close()

	// Seeded kill schedule: one JSONL session dies at a chunk boundary
	// (balancer replay recovers it), one binary session dies mid-body
	// (the client's resend path recovers it).
	rng := rand.New(rand.NewSource(4242))
	killReplayAt := rng.Intn(len(names))
	killResendAt := rng.Intn(len(names))
	for killResendAt == killReplayAt {
		killResendAt = rng.Intn(len(names))
	}
	killed := 0

	type fleetFormat struct {
		name        string
		contentType string
		encode      func(*trace.Set) ([]byte, error)
	}
	formats := []fleetFormat{
		{"jsonl", ingest.ContentTypeJSONL, func(set *trace.Set) ([]byte, error) {
			var buf bytes.Buffer
			err := trace.WriteJSONL(&buf, set)
			return buf.Bytes(), err
		}},
		{"binary", ingest.ContentTypeBinary, func(set *trace.Set) ([]byte, error) {
			var buf bytes.Buffer
			err := trace.WriteBinary(&buf, set)
			return buf.Bytes(), err
		}},
	}

	alive := func() []*fleetNode {
		out := []*fleetNode{}
		for i, n := range nodes {
			_ = i
			if n != nil {
				out = append(out, n)
			}
		}
		return out
	}
	markDead := func(victim *fleetNode) {
		for i, n := range nodes {
			if n == victim {
				nodes[i] = nil
			}
		}
	}

	payloads := map[string][]byte{}
	types := map[string]string{}
	uploader := func(seed int64) *ingest.Client {
		return ingest.New(ingest.Options{
			BaseURL: lbTS.URL, Retries: 6,
			Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
			Seed: seed, Sleep: func(time.Duration) {},
		})
	}

	for i, name := range names {
		sc, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sc.Build(uint64(31 + i))
		if err != nil {
			t.Fatal(err)
		}
		set := sess.Run(8 * sim.Second)
		for fi, f := range formats {
			payload, err := f.encode(set)
			if err != nil {
				t.Fatal(err)
			}
			id := fmt.Sprintf("%s-%s", name, f.name)
			payloads[id], types[id] = payload, f.contentType

			if _, err := ingest.New(ingest.Options{BaseURL: clean.ts.URL}).
				Upload(context.Background(), id, f.contentType, payload); err != nil {
				t.Fatalf("%s: clean ingest: %v", id, err)
			}

			switch {
			case i == killReplayAt && f.name == "jsonl":
				// Stream in chunks; kill the owner between chunks. The
				// balancer replays its acknowledged buffer into a
				// survivor and the stream continues.
				chunks, seqs := splitLines(payload, 3)
				resp := postChunk(t, lbTS.URL, id, f.contentType, seqs[0], false, bytes.NewReader(chunks[0]))
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("%s chunk 0: %d", id, resp.StatusCode)
				}
				drainClose(resp)
				victim := ownerOf(t, alive(), id, 2*time.Second)
				victim.kill()
				markDead(victim)
				killed++
				// First post-kill chunk bounces (503, marks the node
				// down), the retry fails over with replay.
				resp = postChunk(t, lbTS.URL, id, f.contentType, seqs[1], false, bytes.NewReader(chunks[1]))
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("%s chunk against killed node: %d, want 503", id, resp.StatusCode)
				}
				drainClose(resp)
				resp = postChunk(t, lbTS.URL, id, f.contentType, seqs[1], false, bytes.NewReader(chunks[1]))
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("%s failover chunk: %d", id, resp.StatusCode)
				}
				drainClose(resp)
				resp = postChunk(t, lbTS.URL, id, f.contentType, seqs[2], true, bytes.NewReader(chunks[2]))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s eos after failover: %d", id, resp.StatusCode)
				}
				drainClose(resp)

			case i == killResendAt && f.name == "binary":
				// Kill the owner while the very first request is
				// mid-body: nothing was ever acknowledged, so recovery
				// must come from the client resending after the
				// balancer's retryable 503.
				gate := make(chan struct{})
				body := &gatedReader{
					head: bytes.NewReader(payload[:len(payload)/2]),
					tail: bytes.NewReader(payload[len(payload)/2:]),
					gate: gate,
				}
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					victim := ownerOf(t, alive(), id, 2*time.Second)
					victim.kill()
					markDead(victim)
					killed++
					close(gate)
				}()
				req, err := http.NewRequest(http.MethodPost, lbTS.URL+"/ingest?session="+id, body)
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set("Content-Type", f.contentType)
				req.Header.Set(ingest.HeaderSeq, "0")
				req.Header.Set(ingest.HeaderEos, "1")
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					if resp.StatusCode == http.StatusOK {
						t.Fatalf("%s: upload survived a mid-body backend kill?", id)
					}
					drainClose(resp)
				}
				wg.Wait()
				if stats, err := uploader(int64(1000*i+fi)).Upload(context.Background(), id, f.contentType, payload); err != nil {
					t.Fatalf("%s: resend after kill: %v (stats %+v)", id, err, stats)
				}

			default:
				if stats, err := uploader(int64(1000*i+fi)).Upload(context.Background(), id, f.contentType, payload); err != nil {
					t.Fatalf("%s: fleet ingest: %v (stats %+v)", id, err, stats)
				}
			}
		}
	}
	if killed != 2 {
		t.Fatalf("killed %d nodes, want 2", killed)
	}

	// Sessions that completed on a node killed later are gone with it;
	// the recovery contract is client redelivery through the balancer,
	// which re-pins and re-analyzes. After that, every report must
	// exist and match clean single-node analysis byte for byte.
	redelivered := 0
	for id, payload := range payloads {
		resp, err := http.Get(lbTS.URL + "/report/" + id)
		if err != nil {
			t.Fatalf("report %s: %v", id, err)
		}
		lost := resp.StatusCode != http.StatusOK
		drainClose(resp)
		if lost {
			if _, err := uploader(7).Upload(context.Background(), id, types[id], payload); err != nil {
				t.Fatalf("%s: redelivery: %v", id, err)
			}
			redelivered++
		}
		want := fetchReport(t, clean.ts.URL, id)
		got := fetchReport(t, lbTS.URL, id)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: fleet report diverged from clean single-node ingest\nclean: %s\nfleet: %s", id, want, got)
		}
	}
	t.Logf("fleet chaos: 2 nodes killed, %d sessions redelivered, %d reports byte-identical", redelivered, len(payloads))

	// The fleet exposition stays lint-clean with half the fleet dead,
	// and records the failovers.
	resp, err := http.Get(lbTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if errs, _ := obs.Lint(bytes.NewReader(text)); len(errs) > 0 {
		t.Fatalf("fleet exposition with dead nodes fails lint: %v", errs)
	}
	if !regexpMatch(string(text), `dominolb_failovers_total [1-9]`) {
		t.Fatalf("no failovers recorded:\n%s", text)
	}
}

// regexpMatch is a tiny helper so the assertion above reads clearly.
func regexpMatch(text, expr string) bool {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, strings.Split(expr, " ")[0]) {
			var v float64
			if _, err := fmt.Sscanf(line, strings.Split(expr, " ")[0]+" %f", &v); err == nil && v >= 1 {
				return true
			}
		}
	}
	return false
}

// TestFleetDrainSemantics pins drain end to end with real dominods:
// when a backend starts draining (what SIGTERM flips), the balancer
// stops routing new sessions to it while the in-flight session
// completes — via failover, because a draining dominod rejects every
// ingest POST — and its report lands, byte-identical to a clean run.
func TestFleetDrainSemantics(t *testing.T) {
	clean := newFleetNode(t, "clean")
	a, b := newFleetNode(t, "a"), newFleetNode(t, "b")
	lb, err := balancer.New(balancer.Options{
		Backends:       []string{a.ts.URL, b.ts.URL},
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  time.Second, // default interval/2 is too twitchy under test load
		FailThreshold:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	lbTS := httptest.NewServer(lb.Routes())
	defer lbTS.Close()

	sc, err := scenario.ByName("harq-storm")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sc.Build(101)
	if err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	if err := trace.WriteJSONL(&payload, sess.Run(8*sim.Second)); err != nil {
		t.Fatal(err)
	}
	const id = "drain-pinned"
	if _, err := ingest.New(ingest.Options{BaseURL: clean.ts.URL}).
		Upload(context.Background(), id, ingest.ContentTypeJSONL, payload.Bytes()); err != nil {
		t.Fatal(err)
	}

	chunks, seqs := splitLines(payload.Bytes(), 3)
	resp := postChunk(t, lbTS.URL, id, ingest.ContentTypeJSONL, seqs[0], false, bytes.NewReader(chunks[0]))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 0: %d", resp.StatusCode)
	}
	drainClose(resp)

	owner := ownerOf(t, []*fleetNode{a, b}, id, 2*time.Second)
	survivor := a
	if owner == a {
		survivor = b
	}
	// What SIGTERM does, without the process exit racing the test.
	owner.srv.draining.Store(true)

	// The prober must notice and demote it to draining (not down).
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(lbTS.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"state": "draining"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("balancer never saw the drain: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New sessions all land on the survivor.
	for i := 0; i < 6; i++ {
		nid := fmt.Sprintf("post-drain-%d", i)
		resp := postChunk(t, lbTS.URL, nid, ingest.ContentTypeJSONL, 0, true, bytes.NewReader(payload.Bytes()))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s during drain: %d", nid, resp.StatusCode)
		}
		drainClose(resp)
		probe, err := http.Get(survivor.ts.URL + "/sessions/" + nid + "/watermark")
		if err != nil {
			t.Fatal(err)
		}
		if probe.StatusCode != http.StatusOK {
			t.Fatalf("session %s not on the surviving node", nid)
		}
		drainClose(probe)
	}
	// The draining node accumulated nothing new.
	resp, err = http.Get(owner.ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Session != id {
		t.Fatalf("draining node sessions = %+v, want only %q", infos, id)
	}

	// The pinned session finishes: a draining dominod rejects the next
	// chunk, so the balancer fails it over (replay) to the survivor.
	resp = postChunk(t, lbTS.URL, id, ingest.ContentTypeJSONL, seqs[1], false, bytes.NewReader(chunks[1]))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 1 during drain: %d", resp.StatusCode)
	}
	drainClose(resp)
	resp = postChunk(t, lbTS.URL, id, ingest.ContentTypeJSONL, seqs[2], true, bytes.NewReader(chunks[2]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eos during drain: %d", resp.StatusCode)
	}
	drainClose(resp)

	want := fetchReport(t, clean.ts.URL, id)
	got := fetchReport(t, lbTS.URL, id)
	if !bytes.Equal(want, got) {
		t.Fatalf("drained-through report diverged:\nclean: %s\nfleet: %s", want, got)
	}
}

// TestFleetMetricsMergeAcceptance pins the federation criterion: the
// balancer's /metrics equals obs.Merge of the per-node snapshots and
// lints clean.
func TestFleetMetricsMergeAcceptance(t *testing.T) {
	a, b := newFleetNode(t, "a"), newFleetNode(t, "b")
	lb, err := balancer.New(balancer.Options{
		Backends:       []string{a.ts.URL, b.ts.URL},
		HealthInterval: time.Hour, // scrape comparisons need a quiet fleet
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	lbTS := httptest.NewServer(lb.Routes())
	defer lbTS.Close()

	for i, n := range []*fleetNode{a, b} {
		_, body := sessionTrace(t, ran.Amarisoft(), uint64(60+i), 4*sim.Second)
		resp, err := http.Post(n.ts.URL+"/ingest?session=fed", "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		drainClose(resp)
	}

	scrape := func(base string) ([]byte, obs.Snapshot) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		text, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := obs.ParseText(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("scrape of %s does not parse: %v", base, err)
		}
		return text, snap
	}

	fleetText, fleetSnap := scrape(lbTS.URL)
	if errs, _ := obs.Lint(bytes.NewReader(fleetText)); len(errs) > 0 {
		t.Fatalf("fleet exposition fails lint: %v", errs)
	}
	for _, node := range []string{"a", "b"} {
		if !strings.Contains(string(fleetText), `dominod_node_info{node="`+node+`"} 1`) {
			t.Fatalf("node %s identity missing from fleet exposition:\n%s", node, fleetText)
		}
	}

	_, snapA := scrape(a.ts.URL)
	_, snapB := scrape(b.ts.URL)
	want, err := obs.Merge(snapA, snapB)
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range want.Families {
		var got *obs.Family
		for i := range fleetSnap.Families {
			if fleetSnap.Families[i].Name == wf.Name {
				got = &fleetSnap.Families[i]
				break
			}
		}
		if got == nil {
			t.Fatalf("family %s missing from fleet exposition", wf.Name)
		}
		var gotBuf, wantBuf bytes.Buffer
		if err := (obs.Snapshot{Families: []obs.Family{*got}}).WriteText(&gotBuf); err != nil {
			t.Fatal(err)
		}
		if err := (obs.Snapshot{Families: []obs.Family{wf}}).WriteText(&wantBuf); err != nil {
			t.Fatal(err)
		}
		if gotBuf.String() != wantBuf.String() {
			t.Fatalf("family %s != Merge of per-node snapshots:\nfleet:\n%s\nmerge:\n%s",
				wf.Name, gotBuf.String(), wantBuf.String())
		}
	}
}
