package main

// The chaos differential: every registered scenario is ingested twice —
// once over a clean transport, once through a seeded fault injector
// that tears, corrupts, and delays the uploads — and the final
// /report/{id} payloads must be byte-identical. This is the acceptance
// check for the whole fault-tolerance layer: retry, resume, dedup, and
// suspend-on-interrupt must be invisible in the analysis output.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/domino5g/domino/internal/faultinject"
	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// chaosFleetNow pins the fleet clock so store timestamps (and thus any
// time-derived report content) agree across the clean and chaos runs.
const chaosFleetNow = sim.Time(1_754_000_000_000_000)

func fetchReport(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/report/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// TestChaosDifferential pushes all registered scenarios through a
// flaky transport in both wire formats and asserts the reports match
// the clean ingest byte for byte.
func TestChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential is the long acceptance test")
	}
	names := scenario.Names()
	if len(names) != 14 {
		t.Fatalf("scenario catalog has %d entries, the chaos matrix expects 14", len(names))
	}

	now := func() sim.Time { return chaosFleetNow }
	cleanSrv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 4, Now: now})
	cleanTS := httptest.NewServer(cleanSrv.routes())
	defer cleanTS.Close()
	chaosSrv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 4, Now: now})
	chaosTS := httptest.NewServer(chaosSrv.routes())
	defer chaosTS.Close()

	const dur = 12 * sim.Second
	formats := []struct {
		name        string
		contentType string
		encode      func(*trace.Set) ([]byte, error)
	}{
		{"jsonl", ingest.ContentTypeJSONL, func(set *trace.Set) ([]byte, error) {
			var buf bytes.Buffer
			err := trace.WriteJSONL(&buf, set)
			return buf.Bytes(), err
		}},
		{"binary", ingest.ContentTypeBinary, func(set *trace.Set) ([]byte, error) {
			var buf bytes.Buffer
			err := trace.WriteBinary(&buf, set)
			return buf.Bytes(), err
		}},
	}

	faulted := 0
	for i, name := range names {
		sc, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sc.Build(uint64(31 + i))
		if err != nil {
			t.Fatal(err)
		}
		set := sess.Run(dur)

		for fi, f := range formats {
			payload, err := f.encode(set)
			if err != nil {
				t.Fatal(err)
			}
			id := fmt.Sprintf("%s-%s", name, f.name)

			clean := ingest.New(ingest.Options{BaseURL: cleanTS.URL})
			if _, err := clean.Upload(context.Background(), id, f.contentType, payload); err != nil {
				t.Fatalf("%s: clean ingest: %v", id, err)
			}

			// Every upload gets its own transport so each suffers the
			// full fault schedule: a torn stream, a corrupted tail, and
			// a delayed write before the fourth attempt goes through.
			flaky := faultinject.NewTransport(faultinject.TransportOptions{
				Seed:      int64(1000*i + fi),
				MaxFaults: 3,
			})
			chaos := ingest.New(ingest.Options{
				BaseURL:    chaosTS.URL,
				HTTPClient: &http.Client{Transport: flaky},
				Retries:    8,
				Backoff:    time.Millisecond,
				MaxBackoff: 5 * time.Millisecond,
				Seed:       int64(fi),
				Sleep:      func(time.Duration) {},
			})
			stats, err := chaos.Upload(context.Background(), id, f.contentType, payload)
			if err != nil {
				t.Fatalf("%s: chaos ingest: %v (attempts %d)", id, err, stats.Attempts)
			}
			// Attempt 1 is torn, attempt 2 corrupted, attempt 3 merely
			// delayed — so the third attempt is the one that lands.
			if stats.Attempts != 3 {
				t.Fatalf("%s: chaos ingest took %d attempts, want 3 (2 hard faults + delayed success)", id, stats.Attempts)
			}
			faulted += len(flaky.Faults())

			want := fetchReport(t, cleanTS.URL, id)
			got := fetchReport(t, chaosTS.URL, id)
			if !bytes.Equal(want, got) {
				t.Fatalf("%s: chaos report diverged from clean ingest\nclean: %s\nchaos: %s", id, want, got)
			}
		}
	}
	if faulted != len(names)*len(formats)*3 {
		t.Fatalf("injector delivered %d faults, want %d", faulted, len(names)*len(formats)*3)
	}
	// The chaos server really did resume sessions rather than restart
	// them from scratch every time.
	if chaosSrv.m.ingestInterrupted.Value() == 0 {
		t.Fatal("no upload was ever interrupted mid-stream — the fault injector is not biting")
	}
}

// TestChaosCrashRecovery is the in-process kill -9: journal appends
// happen, the process "dies" without a final checkpoint, and recovery
// must rebuild the store byte-identical to a graceful spill. The
// out-of-process variant (a real SIGKILL) runs in scripts/chaos_smoke.sh.
func TestChaosCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "store.spill")
	wal := filepath.Join(dir, "store.wal")

	st, j, stats, err := rcastore.Recover(ckpt, wal, rcastore.Options{}, rcastore.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 || stats.CheckpointRows != 0 {
		t.Fatalf("fresh recovery not empty: %+v", stats)
	}
	srv := newServer(testAnalyzer(t), serverOptions{
		MaxStreams: 4, Store: st, Journal: j,
		Now: func() sim.Time { return chaosFleetNow },
	})
	ts := httptest.NewServer(srv.routes())

	for i, name := range []string{"harq-storm", "rlc-cascade", "jb-freeze-surge"} {
		sc, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sc.Build(uint64(77 + i))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, sess.Run(8*sim.Second)); err != nil {
			t.Fatal(err)
		}
		resp := postChunk(t, ts.URL, name, "application/jsonl", -1, false, &buf)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: %d", name, resp.StatusCode)
		}
		drainClose(resp)
	}
	ts.Close()

	// What a graceful shutdown would have persisted.
	var graceful bytes.Buffer
	if err := st.Spill(&graceful); err != nil {
		t.Fatal(err)
	}

	// Crash: no Checkpoint, no Close — the journal file is all that
	// survives. Recovery must replay it into an identical store.
	st2, j2, stats2, err := rcastore.Recover(ckpt, wal, rcastore.Options{}, rcastore.JournalOptions{})
	if err != nil {
		t.Fatalf("post-crash recovery: %v", err)
	}
	defer j2.Close()
	if stats2.Replayed != 3 {
		t.Fatalf("replayed %d journal records, want 3 (stats %+v)", stats2.Replayed, stats2)
	}
	var recovered bytes.Buffer
	if err := st2.Spill(&recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(graceful.Bytes(), recovered.Bytes()) {
		t.Fatalf("recovered store diverged from graceful spill (%d vs %d bytes)",
			recovered.Len(), graceful.Len())
	}
}
