// Command dominod is the live, operator-side Domino analysis service:
// the always-on deployment mode the paper frames for its detector. It
// ingests many concurrent session trace streams over HTTP — JSONL or
// the compact binary columnar format, negotiated per request by
// Content-Type — and serves per-session root-cause reports and
// aggregate cause-class counters while the calls are still in
// progress, using the streaming analyzer's O(window) per-session
// state.
//
// Usage:
//
//	dominod [-addr :8077] [-graph chains.txt] [-max-streams 64]
//	        [-lateness 0s] [-drop-late] [-flightrec 1024]
//	        [-max-body N] [-admit-wait 2s] [-stream-idle 5m] [-drain 10s]
//	        [-store-spill FILE] [-store-journal FILE] [-store-sync 1]
//	        [-checkpoint-every 1024] [-fixed-clock 0]
//	        [-debug-addr :6060] [-log-format text|json] [-v]
//	dominod -stdin < call.jsonl
//
// Endpoints:
//
//	POST /ingest?session=ID        chunked trace body; analyzed as it arrives.
//	                               Content-Type selects the decoder:
//	                               application/x-domino-trace for the binary
//	                               columnar format; application/jsonl,
//	                               application/x-ndjson, or application/json
//	                               for JSONL; empty or
//	                               application/octet-stream sniffs the first
//	                               bytes; anything else is a 415.
//	                               An X-Domino-Seq header opts into the
//	                               resumable contract (see internal/ingest):
//	                               the body starts at that record index,
//	                               X-Domino-Eos: 1 marks the final chunk,
//	                               and mid-stream failures suspend the
//	                               session for retry instead of failing it.
//	GET  /sessions                 all sessions with live summary stats
//	GET  /sessions/{id}/watermark  accepted-record count, the resume point
//	GET  /report/{id}              full report (live snapshot while active)
//	GET  /query                    longitudinal RCA-store queries (see below)
//	GET  /incidents/similar        nearest prior incidents by fired-node signature
//	GET  /metrics                  Prometheus text exposition (0.0.4, HELP/TYPE)
//	GET  /debug/flightrec/{id}     pipeline flight recording, JSONL (?wall=0
//	                               for the deterministic replay-diff view)
//	GET  /healthz                  readiness probe + build identity; reports
//	                               "draining" (503) during SIGTERM drain
//
// -debug-addr serves net/http/pprof on a separate listener. Logging
// goes through log/slog (-log-format json for structured output, -v
// for per-session debug events).
//
// Session bodies are analyzed record-by-record as they upload, so a
// live collector can keep one chunked POST open for the whole call and
// poll /report/{id} for diagnosis in flight. Admission is bounded by
// -max-streams (a parallel.Limiter): saturation past an -admit-wait
// queue-wait sheds load with 429 + Retry-After instead of blocking
// forever, request bodies are capped at -max-body (413), and clients
// stalled longer than -stream-idle between chunks are disconnected.
// With -stdin the service analyzes a single session from standard
// input and prints the final report, mirroring cmd/domino but via the
// streaming path.
//
// Durability: with -store-spill (or an explicit -store-journal) every
// completed report is also appended to a crash-consistent write-ahead
// journal, fsync-batched per -store-sync and folded into an
// atomic-rename checkpoint every -checkpoint-every reports and at
// shutdown. After a crash the store recovers byte-identical to a
// graceful shutdown: checkpoint load, journal tail replay (a torn
// final record is discarded), session-level dedup across the
// checkpoint crash window. SIGTERM drains in-flight sessions up to
// -drain before the final checkpoint, with /healthz reporting
// "draining" so routers fail over first.
//
// Every completed session's report is also collapsed into the embedded
// fleet RCA store (internal/rcastore), so diagnosis survives session
// eviction and the service answers longitudinal queries:
//
//	GET /query?last=1h&agg=top_chains&k=5          top causal chains fleet-wide
//	GET /query?cell=tdd&cause=ul_scheduling        matching session records
//	GET /query?agg=cause_rates&bucket=10m          per-cell cause rates over time
//	GET /incidents/similar?session=s0042&k=3       prior incidents most like s0042
//
// /query accepts from/to (microsecond timestamps) or last (a duration
// back from now), cell, scenario, cause, fired (comma-separated node
// list, all required), session, and limit; agg selects top_chains
// (with k) or cause_rates (with bucket) instead of raw records.
// /incidents/similar probes by an existing session's signature
// (session=) or an explicit fired= node list. Store retention is
// bounded by -store-blocks; -store-spill FILE reloads history at boot
// and spills it back on shutdown.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stream"
	"github.com/domino5g/domino/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dominod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8077", "listen address")
	graphPath := fs.String("graph", "", "path to a causal-chain DSL file (default: built-in Fig. 9 graph)")
	maxStreams := fs.Int("max-streams", 64, "maximum concurrently ingesting session streams")
	maxSessions := fs.Int("max-sessions", 1024, "retained sessions before the oldest finished ones are evicted")
	lateness := fs.Duration("lateness", 0, "accepted record out-of-orderness (e.g. 100ms)")
	dropLate := fs.Bool("drop-late", false, "count and drop too-late records instead of failing the stream")
	storeBlocks := fs.Int("store-blocks", 4096, "retained RCA-store blocks of 256 reports each (0 = unbounded)")
	storeSpill := fs.String("store-spill", "", "RCA-store spill file: loaded at startup if present, written at shutdown")
	stdin := fs.Bool("stdin", false, "analyze one session from standard input and exit")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (disabled when empty)")
	flightRec := fs.Int("flightrec", 1024, "per-session flight-recorder capacity in events (0 disables)")
	maxBody := fs.Int64("max-body", 256<<20, "maximum /ingest request body bytes (0 = unlimited)")
	admitWait := fs.Duration("admit-wait", 2*time.Second, "bounded wait for an ingest slot before shedding with 429 (0 = block)")
	streamIdle := fs.Duration("stream-idle", 5*time.Minute, "per-chunk read deadline on ingest bodies; slow clients are cut, not held (0 disables)")
	drainWait := fs.Duration("drain", 10*time.Second, "SIGTERM drain deadline for in-flight sessions before the final checkpoint")
	storeJournal := fs.String("store-journal", "", "RCA-store write-ahead journal path (default <store-spill>.wal when -store-spill is set; \"off\" disables)")
	storeSync := fs.Int("store-sync", 1, "journal appends per fsync (group commit; 1 = every report durable on ack)")
	checkpointEvery := fs.Int("checkpoint-every", 1024, "journal appends between automatic checkpoints (0 = checkpoint only at shutdown)")
	fixedClock := fs.Int64("fixed-clock", 0, "fix the fleet clock to this microsecond timestamp for deterministic runs (0 = wall clock)")
	nodeID := fs.String("node-id", "", "node identity surfaced on /healthz and as dominod_node_info{node=...} so merged fleet expositions attribute samples (default: hostname)")
	verbose := fs.Bool("v", false, "log per-session lifecycle events (debug level)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level})
	default:
		fmt.Fprintf(stderr, "dominod: bad -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	graph := domino.DefaultGraph()
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fmt.Fprintln(stderr, "dominod:", err)
			return 1
		}
		g, err := domino.ParseChains(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "dominod: parsing %s: %v\n", *graphPath, err)
			return 1
		}
		graph = g
	}
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
	if err != nil {
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	}

	opts := serverOptions{
		MaxStreams:  *maxStreams,
		MaxSessions: *maxSessions,
		Lateness:    sim.Time(*lateness / time.Microsecond),
		DropLate:    *dropLate,
		StoreBlocks: *storeBlocks,
		FlightRec:   *flightRec,
		MaxBody:     *maxBody,
		AdmitWait:   *admitWait,
		StreamIdle:  *streamIdle,
		Log:         logger,
		NodeID:      *nodeID,
	}
	if opts.NodeID == "" {
		if host, err := os.Hostname(); err == nil {
			opts.NodeID = host
		}
	}
	if *fixedClock != 0 {
		at := sim.Time(*fixedClock)
		opts.Now = func() sim.Time { return at }
	}
	journalPath := *storeJournal
	if journalPath == "" && *storeSpill != "" {
		journalPath = *storeSpill + ".wal"
	}
	if journalPath == "off" {
		journalPath = ""
	}
	switch {
	case !*stdin && journalPath != "":
		// Durable mode: crash-recover checkpoint + journal tail, then
		// keep journaling. The spill file doubles as the checkpoint.
		ckptPath := *storeSpill
		if ckptPath == "" {
			ckptPath = journalPath + ".ckpt"
		}
		st, j, rstats, err := rcastore.Recover(ckptPath, journalPath,
			rcastore.Options{MaxBlocks: *storeBlocks},
			rcastore.JournalOptions{SyncEvery: *storeSync})
		if err != nil {
			fmt.Fprintln(stderr, "dominod: recovering RCA store:", err)
			return 1
		}
		opts.Store = st
		opts.Journal = j
		opts.CheckpointPath = ckptPath
		opts.CheckpointEvery = *checkpointEvery
		opts.Recovery = &rstats
		logger.Info("RCA store recovered",
			"checkpoint", ckptPath, "journal", journalPath,
			"checkpoint_rows", rstats.CheckpointRows, "replayed", rstats.Replayed,
			"deduped", rstats.Deduped, "torn_tail", rstats.TornTail)
	case *storeSpill != "":
		if f, err := os.Open(*storeSpill); err == nil {
			st, err := rcastore.Load(f, rcastore.Options{MaxBlocks: *storeBlocks})
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "dominod: loading RCA store spill %s: %v\n", *storeSpill, err)
				return 1
			}
			opts.Store = st
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(stderr, "dominod:", err)
			return 1
		}
	}
	srv := newServer(analyzer, opts)

	if *stdin {
		return srv.runStdin(os.Stdin, stdout, stderr)
	}

	// ReadTimeout deliberately stays 0: ingest bodies are long-lived
	// chunked streams that legitimately outlive any whole-request
	// budget. Slow clients are bounded per-chunk by -stream-idle read
	// deadlines instead; header parsing and idle keep-alives get hard
	// timeouts here.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: debugMux()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				srv.log.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		defer dbg.Close()
		srv.log.Info("pprof enabled", "addr", *debugAddr)
	}
	srv.log.Info("listening", "addr", *addr, "node", opts.NodeID, "stream_slots", *maxStreams, "chains", len(analyzer.Chains()))
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	case <-ctx.Done():
		// Drain: /healthz flips to "draining" and new sessions are
		// rejected while in-flight uploads run to the deadline; only
		// then is the final state checkpointed.
		srv.draining.Store(true)
		srv.log.Info("draining", "deadline", *drainWait)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			srv.log.Warn("drain deadline exceeded, cutting in-flight sessions", "err", err)
		}
		srv.exec.Close()
		switch {
		case srv.journal != nil:
			if err := srv.journal.Checkpoint(srv.store, srv.opts.CheckpointPath); err != nil {
				fmt.Fprintln(stderr, "dominod: final checkpoint:", err)
				return 1
			}
			if err := srv.journal.Close(); err != nil {
				fmt.Fprintln(stderr, "dominod: closing journal:", err)
				return 1
			}
			srv.log.Info("RCA store checkpointed", "path", srv.opts.CheckpointPath, "stats", srv.store.Stats().String())
		case *storeSpill != "":
			if err := spillStore(srv.store, *storeSpill); err != nil {
				fmt.Fprintln(stderr, "dominod: spilling RCA store:", err)
				return 1
			}
			srv.log.Info("RCA store spilled", "path", *storeSpill, "stats", srv.store.Stats().String())
		}
		srv.log.Info("shut down")
		return 0
	}
}

// spillStore writes the store atomically: spill to a temp file in the
// target directory, then rename over the destination.
func spillStore(st *rcastore.Store, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.Spill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

type serverOptions struct {
	MaxStreams  int
	MaxSessions int
	Lateness    sim.Time
	DropLate    bool
	// StoreBlocks bounds the fleet RCA store (256-report blocks,
	// evicted oldest-first); 0 retains everything.
	StoreBlocks int
	// Store, when non-nil, seeds the server with preloaded history (a
	// reloaded spill). Otherwise an empty store is created.
	Store *rcastore.Store
	// FlightRec is the per-session flight-recorder capacity in events;
	// 0 (the zero value) disables flight recording.
	FlightRec int
	// Now overrides the fleet clock (wall-clock microseconds) stamped
	// onto persisted reports; nil selects time.Now. Tests inject a
	// deterministic clock here.
	Now func() sim.Time
	Log *slog.Logger

	// MaxBody caps /ingest request bodies in bytes; over-limit uploads
	// get 413 and release their admission slot. 0 is unlimited.
	MaxBody int64
	// AdmitWait bounds the queue-wait for an ingest slot; saturation
	// past it sheds with 429 + Retry-After. 0 blocks (legacy behavior).
	AdmitWait time.Duration
	// StreamIdle is the per-chunk read deadline on ingest bodies; a
	// client stalled longer than this is disconnected instead of
	// holding its slot. 0 disables.
	StreamIdle time.Duration
	// Journal, when non-nil, receives every record inserted into the
	// store; with CheckpointPath it makes the store crash-consistent.
	Journal *rcastore.Journal
	// CheckpointPath is where Journal checkpoints the store (atomic
	// rename); required when Journal is set.
	CheckpointPath string
	// CheckpointEvery checkpoints after this many journal appends;
	// 0 checkpoints only at shutdown.
	CheckpointEvery int
	// Recovery, when non-nil, carries the boot recovery stats so
	// newServer can surface them on /metrics.
	Recovery *rcastore.RecoveryStats
	// NodeID names this node on /healthz and in the
	// dominod_node_info{node=...} metric, so a fleet tier merging many
	// nodes' expositions can attribute samples. Empty omits both.
	NodeID string
}

// server multiplexes concurrent session streams over one shared
// analyzer and keeps aggregate counters across them. The session
// registry is sharded by session-ID hash so fleet-scale concurrent
// ingest never serializes on one registry lock, and per-session
// analyzer state (window evaluator series, incremental scratch) is
// recycled through a sync.Pool once a session finishes.
type server struct {
	analyzer *core.Analyzer
	limiter  *parallel.Limiter
	opts     serverOptions
	log      *slog.Logger

	// exec is the shared work-stealing pool the ingest path pipelines
	// analyzer steps onto: while a handler goroutine decodes chunk N+1
	// from the wire, a pool worker pushes chunk N through the session's
	// analyzer. It lives for the server's lifetime (Close drains it at
	// shutdown); a closed pool degrades Submit to a synchronous call,
	// so late uploads still complete.
	exec *parallel.Executor

	// m holds the observability surface: the /metrics registry, its
	// hot-path instruments, and the flight-recorder name table.
	m *metrics

	// store is the longitudinal fleet memory: every completed session's
	// report is collapsed into it, so diagnosis outlives both the
	// pooled analyzer state and registry eviction.
	store *rcastore.Store
	now   func() sim.Time

	// journal (nil when durability is off) write-ahead-logs every store
	// insert; journaled counts appends since the last checkpoint and
	// ckptMu single-flights the async checkpoints they trigger.
	journal   *rcastore.Journal
	journaled atomic.Int64
	ckptMu    sync.Mutex

	// draining flips at SIGTERM: /healthz reports it and new sessions
	// are rejected while in-flight uploads finish.
	draining atomic.Bool

	causeClass, consequenceClass map[string]bool

	shards  [registryShards]regShard
	count   atomic.Int64 // live sessions across all shards
	nextID  atomic.Int64 // anonymous-session ID allocator
	nextSeq atomic.Int64 // global registration order
	saPool  analyzerPool // recycled *stream.Analyzer
	recPool sync.Pool    // recycled *[]trace.Record ingest chunks
}

// analyzerPool is a bounded free-list of detached stream analyzers.
// Unlike sync.Pool, its contents survive GC cycles: an analyzer's
// value is the window-evaluator and incremental scratch it has grown
// to fleet working-set size, and letting the collector's victim-cache
// sweep reclaim that scratch forces the next session to re-grow it
// all — megabytes of avoidable allocation per evicted analyzer. The
// list is capped at the concurrent-stream limit, so retained memory is
// bounded by the same knob that bounds live ingest state; overflow is
// dropped to the GC.
type analyzerPool struct {
	mu     sync.Mutex
	free   []*stream.Analyzer
	newFn  func() *stream.Analyzer
	onMiss func()
}

// Get pops a recycled analyzer or builds a fresh one.
func (p *analyzerPool) Get() *stream.Analyzer {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sa := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return sa
	}
	p.mu.Unlock()
	p.onMiss()
	return p.newFn()
}

// Put returns a Reset analyzer to the free-list, dropping it when the
// list is at capacity.
func (p *analyzerPool) Put(sa *stream.Analyzer) {
	p.mu.Lock()
	if len(p.free) < cap(p.free) {
		p.free = append(p.free, sa)
	}
	p.mu.Unlock()
}

// registryShards is the session-registry fan-out; a power of two so
// the hash mixes cheaply.
const registryShards = 16

// ingestChunk is how many decoded records are pushed per session-lock
// acquisition (and the capacity of pooled record buffers).
const ingestChunk = 256

type regShard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	id  string
	seq int64 // global registration order

	// finished mirrors state != "active" for lock-free reads: the
	// eviction scan checks it without taking sess.mu, so registration
	// at the retention cap never contends with a session mid-chunk.
	finished atomic.Bool

	// ingesting serializes uploads: at most one POST drives a session's
	// analyzer at a time, so a resumed session cannot race its own
	// abandoned predecessor request.
	ingesting atomic.Bool

	mu    sync.Mutex
	sa    *stream.Analyzer // non-nil while ingesting; recycled after
	state string           // "active", "done", "failed"
	err   string
	final *core.Report

	// accepted is the resumable-ingest watermark: decoded records
	// (header included, as record 0) pushed through the analyzer so
	// far. A retrying client replays from here; the handler dedups the
	// already-accepted prefix of its body.
	accepted int

	// Captured when the analyzer is detached at completion, so
	// /sessions and /report keep serving finished sessions without
	// pinning the (pooled) analyzer state.
	stats  stream.Stats
	hdr    trace.Header
	hasHdr bool

	// rec is the session's pipeline flight recorder (nil with
	// -flightrec 0). It outlives the pooled analyzer so
	// /debug/flightrec/{id} serves finished sessions too.
	rec *obs.FlightRecorder
}

func newServer(analyzer *core.Analyzer, opts serverOptions) *server {
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{
		analyzer:         analyzer,
		limiter:          parallel.NewLimiter(opts.MaxStreams),
		exec:             parallel.NewExecutor(0, nil),
		opts:             opts,
		log:              opts.Log,
		m:                newMetrics(analyzer),
		store:            opts.Store,
		now:              opts.Now,
		causeClass:       map[string]bool{},
		consequenceClass: map[string]bool{},
	}
	if s.store == nil {
		s.store = rcastore.New(rcastore.Options{MaxBlocks: opts.StoreBlocks})
	}
	s.store.SetHooks(&storeHooks{m: s.m})
	if opts.Journal != nil {
		s.journal = opts.Journal
		s.journal.SetHooks(&journalHooks{m: s.m})
	}
	if opts.Recovery != nil {
		// Recovery ran before this registry existed; surface its stats.
		s.m.journalReplayed.Add(int64(opts.Recovery.Replayed))
		s.m.journalDeduped.Add(int64(opts.Recovery.Deduped))
	}
	if s.now == nil {
		s.now = func() sim.Time { return sim.Time(time.Now().UnixMicro()) }
	}
	for i := range s.shards {
		s.shards[i].sessions = map[string]*session{}
	}
	poolCap := opts.MaxStreams
	if poolCap < 1 {
		poolCap = 1
	}
	s.saPool = analyzerPool{
		free:   make([]*stream.Analyzer, 0, poolCap),
		newFn:  s.newStream,
		onMiss: func() { s.m.poolMisses.Inc() },
	}
	s.recPool.New = func() any {
		buf := make([]trace.Record, 0, ingestChunk)
		return &buf
	}
	for _, c := range domino.CauseClasses() {
		s.causeClass[c] = true
	}
	for _, c := range domino.ConsequenceClasses() {
		s.consequenceClass[c] = true
	}
	s.registerGauges()
	return s
}

func (s *server) shard(id string) *regShard {
	// FNV-1a over the session ID.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &s.shards[h&(registryShards-1)]
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /sessions/{id}/watermark", s.handleWatermark)
	mux.HandleFunc("GET /report/{id}", s.handleReport)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /incidents/similar", s.handleSimilar)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flightrec/{id}", s.handleFlightRec)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// newStream builds one session's streaming analyzer. Pipeline counters
// and flight-recorder events ride on obs.Hooks installed per session
// at registration (see register), not on the analyzer itself — the
// pooled analyzer clears its hooks on Reset. Per-window results are
// not retained: the service serves event-run statistics, so a
// session's report stays bounded by its event runs however long the
// call lasts.
func (s *server) newStream() *stream.Analyzer {
	return stream.New(s.analyzer, stream.Config{
		Lateness:    s.opts.Lateness,
		DropLate:    s.opts.DropLate,
		DropWindows: true,
	})
}

func (s *server) register(id string) (*session, string, bool) {
	if id == "" {
		id = fmt.Sprintf("s%04d", s.nextID.Add(1))
	}
	sh := s.shard(id)
	sh.mu.Lock()
	if old, exists := sh.sessions[id]; exists {
		// A failed ingest must not squat on its ID: collectors retry
		// the same call ID, and only an active or completed session is
		// worth protecting from replacement.
		old.mu.Lock()
		failed := old.state == "failed"
		old.mu.Unlock()
		if !failed {
			sh.mu.Unlock()
			return nil, id, false
		}
		delete(sh.sessions, id)
		s.count.Add(-1)
	}
	sess := &session{id: id, seq: s.nextSeq.Add(1), state: "active", sa: s.saPool.Get()}
	// Born ingesting: the registering request holds the upload flag
	// from the instant the session is visible, so a racing resume
	// attempt can never drive the same analyzer.
	sess.ingesting.Store(true)
	s.m.poolGets.Inc()
	if s.opts.FlightRec > 0 {
		sess.rec = obs.NewFlightRecorder(s.opts.FlightRec, s.m.names)
	}
	sess.sa.SetHooks(&pipelineHooks{m: s.m, rec: sess.rec})
	sh.sessions[id] = sess
	sh.mu.Unlock()
	s.count.Add(1)
	s.evict()
	s.m.sessionsTotal.Inc()
	return sess, id, true
}

// ingestStatusReplay is registerOrResume's "session already completed"
// disposition: serve the stored report again (idempotent retry of a
// client that lost the final response).
const ingestStatusReplay = -1

// retryAfterOverload is the Retry-After value (seconds) sent with 429
// load-shed responses.
const retryAfterOverload = "1"

// ingestHandoverWait bounds how long a resumable retry waits for the
// interrupted upload's handler — which may not yet have observed its
// dead connection — to release the session before the retry is shed
// with a retryable 503.
const ingestHandoverWait = 2 * time.Second

// acquireIngest takes the session's upload-serialization flag. A
// retry can race the handler it is replacing: the client saw the
// connection reset, but the server side of that upload is still
// draining toward its own read error and holds the flag. Waiting here
// keeps that handover invisible to well-behaved clients; a session
// still owned after ingestHandoverWait is genuinely busy.
func acquireIngest(sess *session) bool {
	deadline := time.Now().Add(ingestHandoverWait)
	for !sess.ingesting.CompareAndSwap(false, true) {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// registerOrResume resolves an ingest request onto a session. It
// returns the session, its (possibly allocated) ID, whether this
// request resumes an existing active session, and a disposition:
// http.StatusOK to proceed (the session's ingesting flag is then held
// by the caller), ingestStatusReplay when the session already
// completed, StatusServiceUnavailable when another upload still owns
// it after the handover wait (transient — the client retries),
// StatusConflict when a non-resumable request reuses an existing ID,
// or StatusPreconditionFailed when seq starts past the session's
// watermark (the client must probe and replay).
func (s *server) registerOrResume(id string, resumable bool, seq int) (*session, string, bool, int) {
	if resumable && id != "" {
		if sess := s.lookup(id); sess != nil {
			sess.mu.Lock()
			state := sess.state
			sess.mu.Unlock()
			switch state {
			case "done":
				return sess, id, false, ingestStatusReplay
			case "active":
				if !acquireIngest(sess) {
					return sess, id, false, http.StatusServiceUnavailable
				}
				// Re-read under the flag: the previous upload may have
				// finished the session before releasing it.
				sess.mu.Lock()
				state, acc := sess.state, sess.accepted
				sess.mu.Unlock()
				switch {
				case state == "done":
					sess.ingesting.Store(false)
					return sess, id, false, ingestStatusReplay
				case state == "active" && seq > acc:
					sess.ingesting.Store(false)
					return sess, id, false, http.StatusPreconditionFailed
				case state == "active":
					return sess, id, true, http.StatusOK
				}
				// Failed while we raced; release and re-register below.
				sess.ingesting.Store(false)
			}
		}
	}
	if seq > 0 {
		// A fresh session has accepted nothing; a nonzero starting
		// offset is a gap before the stream begins.
		return nil, id, false, http.StatusPreconditionFailed
	}
	sess, id, ok := s.register(id)
	if !ok {
		return nil, id, false, http.StatusConflict
	}
	return sess, id, false, http.StatusOK
}

// evict bounds retention: once MaxSessions is reached, the globally
// oldest finished (done or failed) sessions are dropped. Active
// sessions are never evicted; their count is already bounded by the
// admission limiter plus waiting uploads. Shards are scanned without
// any global lock — the bound is enforced within one session of exact.
func (s *server) evict() {
	max := s.opts.MaxSessions
	if max <= 0 {
		return
	}
	for s.count.Load() > int64(max) {
		var oldest *session
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for _, sess := range sh.sessions {
				if sess.finished.Load() && (oldest == nil || sess.seq < oldest.seq) {
					oldest = sess
				}
			}
			sh.mu.Unlock()
		}
		if oldest == nil {
			return
		}
		sh := s.shard(oldest.id)
		sh.mu.Lock()
		if sh.sessions[oldest.id] == oldest {
			delete(sh.sessions, oldest.id)
			s.count.Add(-1)
			s.m.sessionsEvicted.Inc()
			if oldest.rec != nil {
				oldest.rec.Record(obs.Event{Kind: obs.EvSessionEvicted, Wall: time.Now().UnixNano()})
			}
		}
		sh.mu.Unlock()
	}
}

func (s *server) lookup(id string) *session {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[id]
}

// The negotiated ingest wire formats. formatBinary is the compact
// columnar trace encoding (internal/trace.WriteBinary); formatJSONL is
// the line-delimited compatibility path.
const (
	formatJSONL  = "jsonl"
	formatBinary = "binary"

	// contentTypeBinary is the media type that selects the binary
	// columnar decoder on /ingest.
	contentTypeBinary = "application/x-domino-trace"
)

// jsonlContentTypes are the media types that select the JSONL decoder.
var jsonlContentTypes = map[string]bool{
	"application/jsonl":    true,
	"application/x-ndjson": true,
	"application/json":     true,
}

// supportedContentTypes is the 415 error's list of accepted media
// types.
const supportedContentTypes = contentTypeBinary +
	", application/jsonl, application/x-ndjson, application/json, application/octet-stream"

// negotiateFormat maps an ingest request's Content-Type onto a decode
// format: formatBinary, formatJSONL, or "" when the first body bytes
// should be sniffed instead (no Content-Type, or the generic
// octet-stream). Any other media type is an error the handler turns
// into a 415.
func negotiateFormat(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return "", nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return "", fmt.Errorf("unparseable Content-Type %q (supported: %s)", ct, supportedContentTypes)
	}
	switch {
	case mt == contentTypeBinary:
		return formatBinary, nil
	case jsonlContentTypes[mt]:
		return formatJSONL, nil
	case mt == "application/octet-stream":
		return "", nil
	}
	return "", fmt.Errorf("unsupported Content-Type %q (supported: %s)", mt, supportedContentTypes)
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.m.ingestRejected["draining"].Inc()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "draining: this node is shutting down, retry elsewhere")
		return
	}
	format, err := negotiateFormat(r)
	if err != nil {
		// Rejected before registration: an unsupported media type must
		// not squat on its session ID or burn an admission slot.
		httpError(w, http.StatusUnsupportedMediaType, err.Error())
		return
	}
	// The resumable contract rides on two headers: X-Domino-Seq (the
	// record index this body starts at; presence opts the session in)
	// and X-Domino-Eos (this request carries the end of the session).
	// Without them the request is the legacy one-shot contract — body
	// EOF ends the session, any mid-stream error fails it.
	seq, resumable := 0, false
	if v := r.Header.Get(ingest.HeaderSeq); v != "" {
		seq, err = strconv.Atoi(v)
		if err != nil || seq < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad %s %q: want a record index", ingest.HeaderSeq, v))
			return
		}
		resumable = true
	}
	eos := !resumable || r.Header.Get(ingest.HeaderEos) == "1"

	// Admission before registration: a shed upload leaves no session
	// behind, and a registered session is never parked waiting on a
	// slot it may hold forever.
	if err := s.limiter.AcquireTimeout(r.Context(), s.opts.AdmitWait); err != nil {
		if errors.Is(err, parallel.ErrAcquireTimeout) {
			s.m.ingestRejected["overload"].Inc()
			w.Header().Set("Retry-After", retryAfterOverload)
			httpError(w, http.StatusTooManyRequests,
				fmt.Sprintf("ingest capacity saturated (%d streams); retry after backoff", s.limiter.Cap()))
			return
		}
		httpError(w, http.StatusServiceUnavailable, "ingest capacity saturated and client gave up")
		return
	}
	defer s.limiter.Release()

	sess, id, resumed, status := s.registerOrResume(r.URL.Query().Get("session"), resumable, seq)
	switch status {
	case http.StatusOK:
	case ingestStatusReplay:
		// Idempotent retry of a session that already completed: the
		// client lost the final response, not the session. Serve the
		// report again instead of failing the retry.
		writeJSON(w, http.StatusOK, s.reportPayload(sess))
		return
	case http.StatusConflict:
		httpError(w, http.StatusConflict, fmt.Sprintf("session %q already exists", id))
		return
	case http.StatusServiceUnavailable:
		s.m.ingestRejected["busy"].Inc()
		w.Header().Set("Retry-After", retryAfterOverload)
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("session %q is still owned by an interrupted upload; retry after backoff", id))
		return
	case http.StatusPreconditionFailed:
		s.m.ingestRejected["seq_gap"].Inc()
		httpError(w, http.StatusPreconditionFailed,
			fmt.Sprintf("sequence gap: body starts at record %d but session %q has accepted fewer; probe the watermark", seq, id))
		return
	}
	defer sess.ingesting.Store(false)
	skip := 0
	sess.mu.Lock()
	skip = sess.accepted - seq
	sess.mu.Unlock()
	if resumed {
		s.m.ingestResumed.Inc()
	}

	// Body caps and slow-client deadlines: MaxBytesReader enforces
	// -max-body (the tracker tells an over-limit abort apart from any
	// other read error, however the decoder wrapped it), and every
	// chunk read below carries a -stream-idle deadline so a stalled
	// client is disconnected instead of squatting on its admission
	// slot.
	var bodySrc io.Reader = r.Body
	if s.opts.MaxBody > 0 {
		bodySrc = http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	}
	lt := &limitTracker{r: bodySrc}
	rc := http.NewResponseController(w)

	// Build the negotiated decoder; with no (or a generic) Content-Type
	// the first body bytes decide, so -stdin replays and bare curl
	// octet-stream uploads still hit the right path.
	// Binary readers recycle their block storage at depth 1: with the
	// depth-one pipeline below, a batch is fully pushed (and its values
	// copied into the analyzer's index) before the generation it lives
	// in is decoded into again, so steady-state binary ingest allocates
	// no per-record garbage.
	var rr trace.RecordReader
	switch format {
	case formatBinary:
		br := trace.NewBinaryStreamReader(lt)
		br.Recycle(1)
		rr = br
	case formatJSONL:
		rr = trace.NewStreamReader(lt)
	default:
		rr = trace.NewAutoStreamReader(lt)
		if br, isBin := rr.(*trace.BinaryStreamReader); isBin {
			br.Recycle(1)
			format = formatBinary
		} else {
			format = formatJSONL
		}
	}
	s.log.Debug("ingest started", "session", id, "format", format, "seq", seq, "eos", eos, "resumed", resumed)

	// Records decode into a chunk and push in batches — one
	// session-lock acquisition (and one pass of window evaluations) per
	// chunk instead of per record, while /report snapshots interleave
	// between chunks. The two phases pipeline at depth one on the
	// work-stealing pool: the analyzer step for chunk N runs on a pool
	// worker while this goroutine decodes chunk N+1 from the wire. Two
	// buffers alternate so the chunk being decoded never aliases the
	// chunk being pushed; each phase is timed into its latency
	// histogram (decode covers the wire read, step the analyzer pushes,
	// window evaluations included).
	decodeSeconds := s.m.decodeSeconds[format]
	ingestRecords := s.m.ingestRecords[format]
	var bufs [2]*[]trace.Record
	for i := range bufs {
		bufs[i] = s.recPool.Get().(*[]trace.Record)
		defer func(b *[]trace.Record) {
			*b = (*b)[:0]
			s.recPool.Put(b)
		}(bufs[i])
	}
	var pending chan error
	waitPending := func() error {
		if pending == nil {
			return nil
		}
		err := <-pending
		pending = nil
		return err
	}
	cur := 0
	var readErr error
	for readErr == nil {
		if s.opts.StreamIdle > 0 {
			_ = rc.SetReadDeadline(time.Now().Add(s.opts.StreamIdle))
		}
		decodeStart := time.Now()
		var batch []trace.Record
		batch, readErr = rr.ReadBatch((*bufs[cur])[:0])
		decodeSeconds.Observe(time.Since(decodeStart).Seconds())
		if skip > 0 && len(batch) > 0 {
			// A resuming client replayed records the session already
			// analyzed: dedup the prefix instead of double-counting.
			n := skip
			if n > len(batch) {
				n = len(batch)
			}
			batch = batch[n:]
			skip -= n
			s.m.ingestDeduped.Add(int64(n))
		}
		if len(batch) == 0 {
			continue
		}
		if err := waitPending(); err != nil {
			s.fail(sess, err.Error())
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		ch := make(chan error, 1)
		pending = ch
		s.exec.Submit(func(any) { ch <- s.pushChunk(sess, batch, ingestRecords) })
		cur ^= 1
	}
	// Clear the read deadline before responding: the connection may be
	// kept alive, and a stale deadline would poison its next request.
	if s.opts.StreamIdle > 0 {
		_ = rc.SetReadDeadline(time.Time{})
	}
	if err := waitPending(); err != nil {
		s.fail(sess, err.Error())
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if readErr != io.EOF {
		s.abortIngest(w, sess, resumable, lt.hit, readErr)
		return
	}
	if !eos {
		// Clean chunk boundary on a resumable session: acknowledge the
		// watermark and keep the session live for the next chunk.
		sess.mu.Lock()
		acc := sess.accepted
		sess.mu.Unlock()
		writeJSON(w, http.StatusAccepted, ingest.Watermark{Session: id, Accepted: acc, State: "active"})
		return
	}

	sess.mu.Lock()
	stats := sess.sa.Stats()
	rep, err := sess.sa.Close()
	if err != nil {
		s.detachLocked(sess, "failed", err.Error())
		sess.mu.Unlock()
		s.m.sessionsFailed.Inc()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.final = rep
	s.detachLocked(sess, "done", "")
	sess.mu.Unlock()
	s.m.sessionsDone.Inc()
	s.m.lateDropped.Add(int64(stats.LateDropped))
	// Persist the completed diagnosis into the fleet store, stamped so
	// the session ends now and started a report-duration ago.
	end := s.now()
	insertStart := time.Now()
	storeRec := rcastore.FromReport(id, end-rep.Duration, rep)
	s.store.Insert(storeRec)
	s.m.insertSeconds.Observe(time.Since(insertStart).Seconds())
	if s.journal != nil {
		// Write-ahead-journal the completed diagnosis: when this node
		// dies before its next checkpoint, recovery replays the report
		// instead of losing it. An append error is logged and counted
		// but does not fail the session — the analysis succeeded and
		// the in-memory store has it.
		if err := s.journal.Append(storeRec); err != nil {
			s.m.journalErrors.Inc()
			s.log.Error("journal append failed", "session", id, "err", err)
		} else {
			s.maybeCheckpoint()
		}
	}
	if sess.rec != nil {
		sess.rec.Record(obs.Event{
			Kind: obs.EvReportStored,
			Wall: time.Now().UnixNano(),
			Sim:  int64(rep.Duration),
			N:    int64(rep.TotalChainEvents()),
		})
	}
	s.log.Debug("session done",
		"session", id, "cell", rep.CellName, "scenario", rep.Scenario,
		"records", stats.Records, "windows", stats.Windows,
		"late_dropped", stats.LateDropped, "chain_events", rep.TotalChainEvents())
	writeJSON(w, http.StatusOK, s.reportPayload(sess))
}

// pushChunk pushes one decoded chunk through the session's analyzer
// under the session lock. It is the pipelined "step" phase of ingest,
// submitted to the work-stealing pool so it overlaps with the
// handler's decode of the next chunk; depth-one pipelining (the
// handler waits for chunk N before submitting chunk N+1) keeps at most
// one step per session in flight, so session locks never queue and
// chunk order is preserved. records is the per-format accepted-records
// counter for the session's negotiated wire format.
func (s *server) pushChunk(sess *session, recs []trace.Record, records *obs.Counter) error {
	timed := 0
	stepStart := time.Now()
	sess.mu.Lock()
	var pushErr error
	pushed := 0
	for _, rec := range recs {
		if pushErr = sess.sa.Push(rec); pushErr != nil {
			break
		}
		pushed++
		if _, hasTime := rec.Time(); hasTime {
			timed++
		}
	}
	// Advance the resume watermark by decoded records actually pushed:
	// a retrying client replays from here and the handler dedups the
	// prefix, so the analyzer sees every record exactly once.
	sess.accepted += pushed
	if sess.rec != nil {
		sess.rec.Record(obs.Event{
			Kind: obs.EvIngestChunk,
			Wall: time.Now().UnixNano(),
			Sim:  int64(sess.sa.Watermark()),
			N:    int64(len(recs)),
		})
	}
	sess.mu.Unlock()
	s.m.stepSeconds.Observe(time.Since(stepStart).Seconds())
	s.m.recordsTotal.Add(int64(timed))
	records.Add(int64(timed))
	return pushErr
}

// abortIngest disposes of a mid-stream read failure. An over-limit
// body is a permanent 413 (retrying the same payload cannot succeed);
// any other read error on a resumable session suspends it — the
// session stays active with its watermark intact so the client can
// resume — while the legacy one-shot contract fails the session.
func (s *server) abortIngest(w http.ResponseWriter, sess *session, resumable, overLimit bool, readErr error) {
	switch {
	case overLimit:
		s.m.ingestRejected["body_too_large"].Inc()
		s.fail(sess, fmt.Sprintf("request body exceeds the %d-byte ingest cap", s.opts.MaxBody))
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte ingest cap (-max-body)", s.opts.MaxBody))
	case resumable:
		sess.mu.Lock()
		acc := sess.accepted
		sess.mu.Unlock()
		s.m.ingestInterrupted.Inc()
		s.log.Warn("ingest interrupted, session suspended",
			"session", sess.id, "accepted", acc, "err", readErr)
		w.Header().Set("Retry-After", retryAfterOverload)
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("stream interrupted after %d records (%v); resume from the watermark", acc, readErr))
	default:
		s.fail(sess, readErr.Error())
		httpError(w, http.StatusBadRequest, readErr.Error())
	}
}

// maybeCheckpoint triggers an async store checkpoint every
// CheckpointEvery journal appends. Checkpoints single-flight: if one
// is still running, the trigger is dropped — the journal keeps
// growing and the next multiple tries again.
func (s *server) maybeCheckpoint() {
	every := s.opts.CheckpointEvery
	if every <= 0 {
		return
	}
	if n := s.journaled.Add(1); n%int64(every) != 0 {
		return
	}
	go func() {
		if !s.ckptMu.TryLock() {
			return
		}
		defer s.ckptMu.Unlock()
		if err := s.journal.Checkpoint(s.store, s.opts.CheckpointPath); err != nil {
			s.m.journalErrors.Inc()
			s.log.Error("checkpoint failed", "path", s.opts.CheckpointPath, "err", err)
			return
		}
		s.log.Debug("store checkpointed", "path", s.opts.CheckpointPath, "rows", s.store.Len())
	}()
}

// limitTracker marks when the wrapped body hit http.MaxBytesReader's
// cap. Decoders wrap read errors in format-specific context, so the
// handler cannot reliably errors.As the decode error itself; watching
// the raw reader is exact.
type limitTracker struct {
	r   io.Reader
	hit bool
}

func (lt *limitTracker) Read(p []byte) (int, error) {
	n, err := lt.r.Read(p)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			lt.hit = true
		}
	}
	return n, err
}

// handleWatermark serves a session's resume point: how many records
// (header included) the server has accepted. A retrying client probes
// this and replays its stream from that index.
func (s *server) handleWatermark(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.mu.Lock()
	acc, state := sess.accepted, sess.state
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, ingest.Watermark{Session: sess.id, Accepted: acc, State: state})
}

// detachLocked finalizes a session's state, captures the summary and
// report the read endpoints keep serving, and recycles the analyzer
// into the pool. A failed session keeps the partial analysis computed
// up to the failure point. sess.mu must be held.
func (s *server) detachLocked(sess *session, state, errMsg string) {
	sess.state = state
	sess.err = errMsg
	sess.finished.Store(true)
	if sa := sess.sa; sa != nil {
		sess.stats = sa.Stats()
		if hdr, ok := sa.Header(); ok {
			sess.hdr, sess.hasHdr = hdr, true
		}
		if sess.final == nil {
			sess.final = sa.Snapshot()
		}
		sess.sa = nil
		sa.Reset()
		s.saPool.Put(sa)
	}
}

func (s *server) fail(sess *session, msg string) {
	sess.mu.Lock()
	if sess.state == "active" {
		s.detachLocked(sess, "failed", msg)
		s.m.sessionsFailed.Inc()
	}
	sess.mu.Unlock()
	s.log.Warn("session failed", "session", sess.id, "err", msg)
}

// sessionInfo is the summary view served by /sessions and embedded in
// every report payload.
type sessionInfo struct {
	Session           string  `json:"session"`
	Cell              string  `json:"cell"`
	Scenario          string  `json:"scenario,omitempty"`
	State             string  `json:"state"`
	Error             string  `json:"error,omitempty"`
	Records           int     `json:"records"`
	Windows           int     `json:"windows"`
	LateDropped       int     `json:"late_dropped,omitempty"`
	WatermarkUs       int64   `json:"watermark_us"`
	DurationUs        int64   `json:"duration_us"`
	ChainEvents       int     `json:"chain_events"`
	DegradationPerMin float64 `json:"degradation_events_per_min"`
}

type nodeStat struct {
	Events    int     `json:"events"`
	PerMinute float64 `json:"per_min"`
}

type chainStat struct {
	Chain  string `json:"chain"`
	Events int    `json:"events"`
}

// reportPayload is the full per-session report served by /report/{id}.
type reportPayload struct {
	sessionInfo
	Causes       map[string]nodeStat `json:"causes"`
	Consequences map[string]nodeStat `json:"consequences"`
	TopChains    []chainStat         `json:"top_chains"`
}

// snapshot returns the session's current report (final when done, live
// snapshot while active) plus its summary info. Callers hold no locks.
func (s *server) snapshot(sess *session) (*core.Report, sessionInfo) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	stats := sess.stats
	hdr, hasHdr := sess.hdr, sess.hasHdr
	if sess.sa != nil {
		stats = sess.sa.Stats()
		hdr, hasHdr = sess.sa.Header()
	}
	info := sessionInfo{
		Session:     sess.id,
		State:       sess.state,
		Error:       sess.err,
		Records:     stats.Records,
		Windows:     stats.Windows,
		LateDropped: stats.LateDropped,
		WatermarkUs: int64(stats.Watermark),
	}
	if hasHdr {
		info.Cell = hdr.CellName
		info.Scenario = hdr.Scenario
		info.DurationUs = int64(hdr.Duration)
	}
	rep := sess.final
	if rep == nil && sess.sa != nil {
		rep = sess.sa.Snapshot()
	}
	if rep != nil {
		info.ChainEvents = rep.TotalChainEvents()
		info.DegradationPerMin = rep.DegradationEventsPerMinute(domino.ConsequenceClasses())
	}
	return rep, info
}

func (s *server) reportPayload(sess *session) reportPayload {
	rep, info := s.snapshot(sess)
	p := reportPayload{
		sessionInfo:  info,
		Causes:       map[string]nodeStat{},
		Consequences: map[string]nodeStat{},
	}
	if rep == nil {
		return p
	}
	for _, c := range domino.CauseClasses() {
		p.Causes[c] = nodeStat{Events: rep.EventCount(c), PerMinute: rep.EventsPerMinute(c)}
	}
	for _, c := range domino.ConsequenceClasses() {
		p.Consequences[c] = nodeStat{Events: rep.EventCount(c), PerMinute: rep.EventsPerMinute(c)}
	}
	for _, cc := range rep.TopChains(10) {
		p.TopChains = append(p.TopChains, chainStat{Chain: cc.Chain.String(), Events: cc.Events})
	}
	return p
}

func (s *server) handleSessions(w http.ResponseWriter, r *http.Request) {
	var all []*session
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			all = append(all, sess)
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	infos := make([]sessionInfo, 0, len(all))
	for _, sess := range all {
		_, info := s.snapshot(sess)
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, s.reportPayload(sess))
}

// parseQuery maps /query and /incidents/similar URL parameters onto a
// store query. from/to are absolute microsecond timestamps; last is a
// duration back from the fleet clock.
func (s *server) parseQuery(r *http.Request) (rcastore.Query, error) {
	q := rcastore.Query{
		Cell:     r.URL.Query().Get("cell"),
		Scenario: r.URL.Query().Get("scenario"),
		Session:  r.URL.Query().Get("session"),
		Cause:    r.URL.Query().Get("cause"),
	}
	if v := r.URL.Query().Get("fired"); v != "" {
		q.FiredAll = strings.Split(v, ",")
	}
	for name, dst := range map[string]*sim.Time{"from": &q.From, "to": &q.To} {
		if v := r.URL.Query().Get(name); v != "" {
			us, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return q, fmt.Errorf("bad %s %q: want microseconds since epoch", name, v)
			}
			*dst = sim.Time(us)
		}
	}
	if v := r.URL.Query().Get("last"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("bad last %q: want a positive duration like 1h", v)
		}
		q.From = s.now() - sim.Time(d/time.Microsecond)
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q", v)
		}
		q.Limit = n
	}
	return q, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// handleQuery serves longitudinal reads over the fleet RCA store:
// matching records by default, or an aggregation when agg=top_chains
// (ranked by total chain runs, top k) or agg=cause_rates (per-cell
// cause-class rates over bucket-sized time buckets).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := s.parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch agg := r.URL.Query().Get("agg"); agg {
	case "":
		writeJSON(w, http.StatusOK, map[string]any{"records": s.store.Query(q)})
	case "top_chains":
		k, err := intParam(r, "k", 10)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"top_chains": s.store.TopChains(q, k)})
	case "cause_rates":
		bucket := 10 * time.Minute
		if v := r.URL.Query().Get("bucket"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad bucket %q: want a positive duration like 10m", v))
				return
			}
			bucket = d
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"cause_rates": s.store.CauseRates(q, sim.Time(bucket/time.Microsecond)),
		})
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown agg %q (want top_chains or cause_rates)", agg))
	}
}

// handleSimilar serves nearest-prior-incident lookups: the probe
// signature comes from an already-stored session (session=) or an
// explicit fired= node list, and candidates rank by fired-node Hamming
// distance, ties to the most recent.
func (s *server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 5)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var fired []string
	probeSession := r.URL.Query().Get("session")
	switch {
	case probeSession != "":
		rec, ok := s.store.Fired(probeSession)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("session %q has no stored report", probeSession))
			return
		}
		fired = rec.Fired
	case r.URL.Query().Get("fired") != "":
		fired = strings.Split(r.URL.Query().Get("fired"), ",")
	default:
		httpError(w, http.StatusBadRequest, "want session=ID or fired=node,node,...")
		return
	}
	q := rcastore.Query{Cell: r.URL.Query().Get("cell"), Scenario: r.URL.Query().Get("scenario")}
	matches := s.store.Similar(fired, q, k+1)
	// The probe session is trivially its own nearest incident; drop it.
	out := matches[:0]
	for _, m := range matches {
		if probeSession != "" && m.Session == probeSession {
			continue
		}
		out = append(out, m)
	}
	if len(out) > k {
		out = out[:k]
	}
	writeJSON(w, http.StatusOK, map[string]any{"fired": fired, "matches": out})
}

// runStdin analyzes a single session from standard input through the
// streaming path and prints the final report.
func (s *server) runStdin(in io.Reader, stdout, stderr io.Writer) int {
	sa := s.newStream()
	rep, err := domino.StreamRecords(in, sa)
	if err != nil {
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	}
	stats := sa.Stats()

	fmt.Fprintf(stdout, "session: %s (%v, %d records, %d windows, peak buffer %d samples)\n\n",
		rep.CellName, rep.Duration, stats.Records, stats.Windows, stats.MaxBuffered)
	fmt.Fprintln(stdout, "5G causes (events/min):")
	for _, c := range domino.CauseClasses() {
		fmt.Fprintf(stdout, "  %-18s %6.2f\n", c, rep.EventsPerMinute(c))
	}
	fmt.Fprintln(stdout, "\nWebRTC consequences (events/min):")
	for _, c := range domino.ConsequenceClasses() {
		fmt.Fprintf(stdout, "  %-22s %6.2f\n", c, rep.EventsPerMinute(c))
	}
	fmt.Fprintf(stdout, "\ndegradation events/min: %.2f\n",
		rep.DegradationEventsPerMinute(domino.ConsequenceClasses()))
	fmt.Fprintln(stdout, "\ntop matched chains:")
	for _, cc := range rep.TopChains(10) {
		fmt.Fprintf(stdout, "  %4d×  %s\n", cc.Events, cc.Chain.String())
	}
	return 0
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
