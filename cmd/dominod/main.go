// Command dominod is the live, operator-side Domino analysis service:
// the always-on deployment mode the paper frames for its detector. It
// ingests many concurrent session trace streams over HTTP — JSONL or
// the compact binary columnar format, negotiated per request by
// Content-Type — and serves per-session root-cause reports and
// aggregate cause-class counters while the calls are still in
// progress, using the streaming analyzer's O(window) per-session
// state.
//
// Usage:
//
//	dominod [-addr :8077] [-graph chains.txt] [-max-streams 64]
//	        [-lateness 0s] [-drop-late] [-flightrec 1024]
//	        [-debug-addr :6060] [-log-format text|json] [-v]
//	dominod -stdin < call.jsonl
//
// Endpoints:
//
//	POST /ingest?session=ID        chunked trace body; analyzed as it arrives.
//	                               Content-Type selects the decoder:
//	                               application/x-domino-trace for the binary
//	                               columnar format; application/jsonl,
//	                               application/x-ndjson, or application/json
//	                               for JSONL; empty or
//	                               application/octet-stream sniffs the first
//	                               bytes; anything else is a 415.
//	GET  /sessions                 all sessions with live summary stats
//	GET  /report/{id}              full report (live snapshot while active)
//	GET  /query                    longitudinal RCA-store queries (see below)
//	GET  /incidents/similar        nearest prior incidents by fired-node signature
//	GET  /metrics                  Prometheus text exposition (0.0.4, HELP/TYPE)
//	GET  /debug/flightrec/{id}     pipeline flight recording, JSONL (?wall=0
//	                               for the deterministic replay-diff view)
//	GET  /healthz                  readiness probe + build identity
//
// -debug-addr serves net/http/pprof on a separate listener. Logging
// goes through log/slog (-log-format json for structured output, -v
// for per-session debug events).
//
// Session bodies are analyzed record-by-record as they upload, so a
// live collector can keep one chunked POST open for the whole call and
// poll /report/{id} for diagnosis in flight. Admission is bounded by
// -max-streams (a parallel.Limiter): excess uploads block until a slot
// frees, giving natural backpressure instead of unbounded memory. With
// -stdin the service analyzes a single session from standard input and
// prints the final report, mirroring cmd/domino but via the streaming
// path.
//
// Every completed session's report is also collapsed into the embedded
// fleet RCA store (internal/rcastore), so diagnosis survives session
// eviction and the service answers longitudinal queries:
//
//	GET /query?last=1h&agg=top_chains&k=5          top causal chains fleet-wide
//	GET /query?cell=tdd&cause=ul_scheduling        matching session records
//	GET /query?agg=cause_rates&bucket=10m          per-cell cause rates over time
//	GET /incidents/similar?session=s0042&k=3       prior incidents most like s0042
//
// /query accepts from/to (microsecond timestamps) or last (a duration
// back from now), cell, scenario, cause, fired (comma-separated node
// list, all required), session, and limit; agg selects top_chains
// (with k) or cause_rates (with bucket) instead of raw records.
// /incidents/similar probes by an existing session's signature
// (session=) or an explicit fired= node list. Store retention is
// bounded by -store-blocks; -store-spill FILE reloads history at boot
// and spills it back on shutdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stream"
	"github.com/domino5g/domino/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dominod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8077", "listen address")
	graphPath := fs.String("graph", "", "path to a causal-chain DSL file (default: built-in Fig. 9 graph)")
	maxStreams := fs.Int("max-streams", 64, "maximum concurrently ingesting session streams")
	maxSessions := fs.Int("max-sessions", 1024, "retained sessions before the oldest finished ones are evicted")
	lateness := fs.Duration("lateness", 0, "accepted record out-of-orderness (e.g. 100ms)")
	dropLate := fs.Bool("drop-late", false, "count and drop too-late records instead of failing the stream")
	storeBlocks := fs.Int("store-blocks", 4096, "retained RCA-store blocks of 256 reports each (0 = unbounded)")
	storeSpill := fs.String("store-spill", "", "RCA-store spill file: loaded at startup if present, written at shutdown")
	stdin := fs.Bool("stdin", false, "analyze one session from standard input and exit")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (disabled when empty)")
	flightRec := fs.Int("flightrec", 1024, "per-session flight-recorder capacity in events (0 disables)")
	verbose := fs.Bool("v", false, "log per-session lifecycle events (debug level)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level})
	default:
		fmt.Fprintf(stderr, "dominod: bad -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	graph := domino.DefaultGraph()
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fmt.Fprintln(stderr, "dominod:", err)
			return 1
		}
		g, err := domino.ParseChains(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "dominod: parsing %s: %v\n", *graphPath, err)
			return 1
		}
		graph = g
	}
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
	if err != nil {
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	}

	opts := serverOptions{
		MaxStreams:  *maxStreams,
		MaxSessions: *maxSessions,
		Lateness:    sim.Time(*lateness / time.Microsecond),
		DropLate:    *dropLate,
		StoreBlocks: *storeBlocks,
		FlightRec:   *flightRec,
		Log:         logger,
	}
	if *storeSpill != "" {
		if f, err := os.Open(*storeSpill); err == nil {
			st, err := rcastore.Load(f, rcastore.Options{MaxBlocks: *storeBlocks})
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "dominod: loading RCA store spill %s: %v\n", *storeSpill, err)
				return 1
			}
			opts.Store = st
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(stderr, "dominod:", err)
			return 1
		}
	}
	srv := newServer(analyzer, opts)

	if *stdin {
		return srv.runStdin(os.Stdin, stdout, stderr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: debugMux()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				srv.log.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		defer dbg.Close()
		srv.log.Info("pprof enabled", "addr", *debugAddr)
	}
	srv.log.Info("listening", "addr", *addr, "stream_slots", *maxStreams, "chains", len(analyzer.Chains()))
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
		srv.exec.Close()
		if *storeSpill != "" {
			if err := spillStore(srv.store, *storeSpill); err != nil {
				fmt.Fprintln(stderr, "dominod: spilling RCA store:", err)
				return 1
			}
			srv.log.Info("RCA store spilled", "path", *storeSpill, "stats", srv.store.Stats().String())
		}
		srv.log.Info("shut down")
		return 0
	}
}

// spillStore writes the store atomically: spill to a temp file in the
// target directory, then rename over the destination.
func spillStore(st *rcastore.Store, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.Spill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

type serverOptions struct {
	MaxStreams  int
	MaxSessions int
	Lateness    sim.Time
	DropLate    bool
	// StoreBlocks bounds the fleet RCA store (256-report blocks,
	// evicted oldest-first); 0 retains everything.
	StoreBlocks int
	// Store, when non-nil, seeds the server with preloaded history (a
	// reloaded spill). Otherwise an empty store is created.
	Store *rcastore.Store
	// FlightRec is the per-session flight-recorder capacity in events;
	// 0 (the zero value) disables flight recording.
	FlightRec int
	// Now overrides the fleet clock (wall-clock microseconds) stamped
	// onto persisted reports; nil selects time.Now. Tests inject a
	// deterministic clock here.
	Now func() sim.Time
	Log *slog.Logger
}

// server multiplexes concurrent session streams over one shared
// analyzer and keeps aggregate counters across them. The session
// registry is sharded by session-ID hash so fleet-scale concurrent
// ingest never serializes on one registry lock, and per-session
// analyzer state (window evaluator series, incremental scratch) is
// recycled through a sync.Pool once a session finishes.
type server struct {
	analyzer *core.Analyzer
	limiter  *parallel.Limiter
	opts     serverOptions
	log      *slog.Logger

	// exec is the shared work-stealing pool the ingest path pipelines
	// analyzer steps onto: while a handler goroutine decodes chunk N+1
	// from the wire, a pool worker pushes chunk N through the session's
	// analyzer. It lives for the server's lifetime (Close drains it at
	// shutdown); a closed pool degrades Submit to a synchronous call,
	// so late uploads still complete.
	exec *parallel.Executor

	// m holds the observability surface: the /metrics registry, its
	// hot-path instruments, and the flight-recorder name table.
	m *metrics

	// store is the longitudinal fleet memory: every completed session's
	// report is collapsed into it, so diagnosis outlives both the
	// pooled analyzer state and registry eviction.
	store *rcastore.Store
	now   func() sim.Time

	causeClass, consequenceClass map[string]bool

	shards  [registryShards]regShard
	count   atomic.Int64 // live sessions across all shards
	nextID  atomic.Int64 // anonymous-session ID allocator
	nextSeq atomic.Int64 // global registration order
	saPool  analyzerPool // recycled *stream.Analyzer
	recPool sync.Pool    // recycled *[]trace.Record ingest chunks
}

// analyzerPool is a bounded free-list of detached stream analyzers.
// Unlike sync.Pool, its contents survive GC cycles: an analyzer's
// value is the window-evaluator and incremental scratch it has grown
// to fleet working-set size, and letting the collector's victim-cache
// sweep reclaim that scratch forces the next session to re-grow it
// all — megabytes of avoidable allocation per evicted analyzer. The
// list is capped at the concurrent-stream limit, so retained memory is
// bounded by the same knob that bounds live ingest state; overflow is
// dropped to the GC.
type analyzerPool struct {
	mu     sync.Mutex
	free   []*stream.Analyzer
	newFn  func() *stream.Analyzer
	onMiss func()
}

// Get pops a recycled analyzer or builds a fresh one.
func (p *analyzerPool) Get() *stream.Analyzer {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sa := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return sa
	}
	p.mu.Unlock()
	p.onMiss()
	return p.newFn()
}

// Put returns a Reset analyzer to the free-list, dropping it when the
// list is at capacity.
func (p *analyzerPool) Put(sa *stream.Analyzer) {
	p.mu.Lock()
	if len(p.free) < cap(p.free) {
		p.free = append(p.free, sa)
	}
	p.mu.Unlock()
}

// registryShards is the session-registry fan-out; a power of two so
// the hash mixes cheaply.
const registryShards = 16

// ingestChunk is how many decoded records are pushed per session-lock
// acquisition (and the capacity of pooled record buffers).
const ingestChunk = 256

type regShard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	id  string
	seq int64 // global registration order

	// finished mirrors state != "active" for lock-free reads: the
	// eviction scan checks it without taking sess.mu, so registration
	// at the retention cap never contends with a session mid-chunk.
	finished atomic.Bool

	mu    sync.Mutex
	sa    *stream.Analyzer // non-nil while ingesting; recycled after
	state string           // "active", "done", "failed"
	err   string
	final *core.Report

	// Captured when the analyzer is detached at completion, so
	// /sessions and /report keep serving finished sessions without
	// pinning the (pooled) analyzer state.
	stats  stream.Stats
	hdr    trace.Header
	hasHdr bool

	// rec is the session's pipeline flight recorder (nil with
	// -flightrec 0). It outlives the pooled analyzer so
	// /debug/flightrec/{id} serves finished sessions too.
	rec *obs.FlightRecorder
}

func newServer(analyzer *core.Analyzer, opts serverOptions) *server {
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{
		analyzer:         analyzer,
		limiter:          parallel.NewLimiter(opts.MaxStreams),
		exec:             parallel.NewExecutor(0, nil),
		opts:             opts,
		log:              opts.Log,
		m:                newMetrics(analyzer),
		store:            opts.Store,
		now:              opts.Now,
		causeClass:       map[string]bool{},
		consequenceClass: map[string]bool{},
	}
	if s.store == nil {
		s.store = rcastore.New(rcastore.Options{MaxBlocks: opts.StoreBlocks})
	}
	s.store.SetHooks(&storeHooks{m: s.m})
	if s.now == nil {
		s.now = func() sim.Time { return sim.Time(time.Now().UnixMicro()) }
	}
	for i := range s.shards {
		s.shards[i].sessions = map[string]*session{}
	}
	poolCap := opts.MaxStreams
	if poolCap < 1 {
		poolCap = 1
	}
	s.saPool = analyzerPool{
		free:   make([]*stream.Analyzer, 0, poolCap),
		newFn:  s.newStream,
		onMiss: func() { s.m.poolMisses.Inc() },
	}
	s.recPool.New = func() any {
		buf := make([]trace.Record, 0, ingestChunk)
		return &buf
	}
	for _, c := range domino.CauseClasses() {
		s.causeClass[c] = true
	}
	for _, c := range domino.ConsequenceClasses() {
		s.consequenceClass[c] = true
	}
	s.registerGauges()
	return s
}

func (s *server) shard(id string) *regShard {
	// FNV-1a over the session ID.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &s.shards[h&(registryShards-1)]
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /report/{id}", s.handleReport)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /incidents/similar", s.handleSimilar)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flightrec/{id}", s.handleFlightRec)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// newStream builds one session's streaming analyzer. Pipeline counters
// and flight-recorder events ride on obs.Hooks installed per session
// at registration (see register), not on the analyzer itself — the
// pooled analyzer clears its hooks on Reset. Per-window results are
// not retained: the service serves event-run statistics, so a
// session's report stays bounded by its event runs however long the
// call lasts.
func (s *server) newStream() *stream.Analyzer {
	return stream.New(s.analyzer, stream.Config{
		Lateness:    s.opts.Lateness,
		DropLate:    s.opts.DropLate,
		DropWindows: true,
	})
}

func (s *server) register(id string) (*session, string, bool) {
	if id == "" {
		id = fmt.Sprintf("s%04d", s.nextID.Add(1))
	}
	sh := s.shard(id)
	sh.mu.Lock()
	if old, exists := sh.sessions[id]; exists {
		// A failed ingest must not squat on its ID: collectors retry
		// the same call ID, and only an active or completed session is
		// worth protecting from replacement.
		old.mu.Lock()
		failed := old.state == "failed"
		old.mu.Unlock()
		if !failed {
			sh.mu.Unlock()
			return nil, id, false
		}
		delete(sh.sessions, id)
		s.count.Add(-1)
	}
	sess := &session{id: id, seq: s.nextSeq.Add(1), state: "active", sa: s.saPool.Get()}
	s.m.poolGets.Inc()
	if s.opts.FlightRec > 0 {
		sess.rec = obs.NewFlightRecorder(s.opts.FlightRec, s.m.names)
	}
	sess.sa.SetHooks(&pipelineHooks{m: s.m, rec: sess.rec})
	sh.sessions[id] = sess
	sh.mu.Unlock()
	s.count.Add(1)
	s.evict()
	s.m.sessionsTotal.Inc()
	return sess, id, true
}

// evict bounds retention: once MaxSessions is reached, the globally
// oldest finished (done or failed) sessions are dropped. Active
// sessions are never evicted; their count is already bounded by the
// admission limiter plus waiting uploads. Shards are scanned without
// any global lock — the bound is enforced within one session of exact.
func (s *server) evict() {
	max := s.opts.MaxSessions
	if max <= 0 {
		return
	}
	for s.count.Load() > int64(max) {
		var oldest *session
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for _, sess := range sh.sessions {
				if sess.finished.Load() && (oldest == nil || sess.seq < oldest.seq) {
					oldest = sess
				}
			}
			sh.mu.Unlock()
		}
		if oldest == nil {
			return
		}
		sh := s.shard(oldest.id)
		sh.mu.Lock()
		if sh.sessions[oldest.id] == oldest {
			delete(sh.sessions, oldest.id)
			s.count.Add(-1)
			s.m.sessionsEvicted.Inc()
			if oldest.rec != nil {
				oldest.rec.Record(obs.Event{Kind: obs.EvSessionEvicted, Wall: time.Now().UnixNano()})
			}
		}
		sh.mu.Unlock()
	}
}

func (s *server) lookup(id string) *session {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[id]
}

// The negotiated ingest wire formats. formatBinary is the compact
// columnar trace encoding (internal/trace.WriteBinary); formatJSONL is
// the line-delimited compatibility path.
const (
	formatJSONL  = "jsonl"
	formatBinary = "binary"

	// contentTypeBinary is the media type that selects the binary
	// columnar decoder on /ingest.
	contentTypeBinary = "application/x-domino-trace"
)

// jsonlContentTypes are the media types that select the JSONL decoder.
var jsonlContentTypes = map[string]bool{
	"application/jsonl":    true,
	"application/x-ndjson": true,
	"application/json":     true,
}

// supportedContentTypes is the 415 error's list of accepted media
// types.
const supportedContentTypes = contentTypeBinary +
	", application/jsonl, application/x-ndjson, application/json, application/octet-stream"

// negotiateFormat maps an ingest request's Content-Type onto a decode
// format: formatBinary, formatJSONL, or "" when the first body bytes
// should be sniffed instead (no Content-Type, or the generic
// octet-stream). Any other media type is an error the handler turns
// into a 415.
func negotiateFormat(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return "", nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return "", fmt.Errorf("unparseable Content-Type %q (supported: %s)", ct, supportedContentTypes)
	}
	switch {
	case mt == contentTypeBinary:
		return formatBinary, nil
	case jsonlContentTypes[mt]:
		return formatJSONL, nil
	case mt == "application/octet-stream":
		return "", nil
	}
	return "", fmt.Errorf("unsupported Content-Type %q (supported: %s)", mt, supportedContentTypes)
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	format, err := negotiateFormat(r)
	if err != nil {
		// Rejected before registration: an unsupported media type must
		// not squat on its session ID or burn an admission slot.
		httpError(w, http.StatusUnsupportedMediaType, err.Error())
		return
	}
	sess, id, ok := s.register(r.URL.Query().Get("session"))
	if !ok {
		httpError(w, http.StatusConflict, fmt.Sprintf("session %q already exists", id))
		return
	}
	if err := s.limiter.Acquire(r.Context()); err != nil {
		s.fail(sess, fmt.Sprintf("admission aborted: %v", err))
		httpError(w, http.StatusServiceUnavailable, "ingest capacity saturated and client gave up")
		return
	}
	defer s.limiter.Release()

	// Build the negotiated decoder; with no (or a generic) Content-Type
	// the first body bytes decide, so -stdin replays and bare curl
	// octet-stream uploads still hit the right path.
	// Binary readers recycle their block storage at depth 1: with the
	// depth-one pipeline below, a batch is fully pushed (and its values
	// copied into the analyzer's index) before the generation it lives
	// in is decoded into again, so steady-state binary ingest allocates
	// no per-record garbage.
	var rr trace.RecordReader
	switch format {
	case formatBinary:
		br := trace.NewBinaryStreamReader(r.Body)
		br.Recycle(1)
		rr = br
	case formatJSONL:
		rr = trace.NewStreamReader(r.Body)
	default:
		rr = trace.NewAutoStreamReader(r.Body)
		if br, isBin := rr.(*trace.BinaryStreamReader); isBin {
			br.Recycle(1)
			format = formatBinary
		} else {
			format = formatJSONL
		}
	}
	s.log.Debug("ingest started", "session", id, "format", format)

	// Records decode into a chunk and push in batches — one
	// session-lock acquisition (and one pass of window evaluations) per
	// chunk instead of per record, while /report snapshots interleave
	// between chunks. The two phases pipeline at depth one on the
	// work-stealing pool: the analyzer step for chunk N runs on a pool
	// worker while this goroutine decodes chunk N+1 from the wire. Two
	// buffers alternate so the chunk being decoded never aliases the
	// chunk being pushed; each phase is timed into its latency
	// histogram (decode covers the wire read, step the analyzer pushes,
	// window evaluations included).
	decodeSeconds := s.m.decodeSeconds[format]
	ingestRecords := s.m.ingestRecords[format]
	var bufs [2]*[]trace.Record
	for i := range bufs {
		bufs[i] = s.recPool.Get().(*[]trace.Record)
		defer func(b *[]trace.Record) {
			*b = (*b)[:0]
			s.recPool.Put(b)
		}(bufs[i])
	}
	var pending chan error
	waitPending := func() error {
		if pending == nil {
			return nil
		}
		err := <-pending
		pending = nil
		return err
	}
	cur := 0
	var readErr error
	for readErr == nil {
		decodeStart := time.Now()
		var batch []trace.Record
		batch, readErr = rr.ReadBatch((*bufs[cur])[:0])
		decodeSeconds.Observe(time.Since(decodeStart).Seconds())
		if len(batch) == 0 {
			continue
		}
		if err := waitPending(); err != nil {
			s.fail(sess, err.Error())
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		ch := make(chan error, 1)
		pending = ch
		s.exec.Submit(func(any) { ch <- s.pushChunk(sess, batch, ingestRecords) })
		cur ^= 1
	}
	if err := waitPending(); err != nil {
		s.fail(sess, err.Error())
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if readErr != io.EOF {
		s.fail(sess, readErr.Error())
		httpError(w, http.StatusBadRequest, readErr.Error())
		return
	}

	sess.mu.Lock()
	stats := sess.sa.Stats()
	rep, err := sess.sa.Close()
	if err != nil {
		s.detachLocked(sess, "failed", err.Error())
		sess.mu.Unlock()
		s.m.sessionsFailed.Inc()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.final = rep
	s.detachLocked(sess, "done", "")
	sess.mu.Unlock()
	s.m.sessionsDone.Inc()
	s.m.lateDropped.Add(int64(stats.LateDropped))
	// Persist the completed diagnosis into the fleet store, stamped so
	// the session ends now and started a report-duration ago.
	end := s.now()
	insertStart := time.Now()
	s.store.Insert(rcastore.FromReport(id, end-rep.Duration, rep))
	s.m.insertSeconds.Observe(time.Since(insertStart).Seconds())
	if sess.rec != nil {
		sess.rec.Record(obs.Event{
			Kind: obs.EvReportStored,
			Wall: time.Now().UnixNano(),
			Sim:  int64(rep.Duration),
			N:    int64(rep.TotalChainEvents()),
		})
	}
	s.log.Debug("session done",
		"session", id, "cell", rep.CellName, "scenario", rep.Scenario,
		"records", stats.Records, "windows", stats.Windows,
		"late_dropped", stats.LateDropped, "chain_events", rep.TotalChainEvents())
	writeJSON(w, http.StatusOK, s.reportPayload(sess))
}

// pushChunk pushes one decoded chunk through the session's analyzer
// under the session lock. It is the pipelined "step" phase of ingest,
// submitted to the work-stealing pool so it overlaps with the
// handler's decode of the next chunk; depth-one pipelining (the
// handler waits for chunk N before submitting chunk N+1) keeps at most
// one step per session in flight, so session locks never queue and
// chunk order is preserved. records is the per-format accepted-records
// counter for the session's negotiated wire format.
func (s *server) pushChunk(sess *session, recs []trace.Record, records *obs.Counter) error {
	timed := 0
	stepStart := time.Now()
	sess.mu.Lock()
	var pushErr error
	for _, rec := range recs {
		if pushErr = sess.sa.Push(rec); pushErr != nil {
			break
		}
		if _, hasTime := rec.Time(); hasTime {
			timed++
		}
	}
	if sess.rec != nil {
		sess.rec.Record(obs.Event{
			Kind: obs.EvIngestChunk,
			Wall: time.Now().UnixNano(),
			Sim:  int64(sess.sa.Watermark()),
			N:    int64(len(recs)),
		})
	}
	sess.mu.Unlock()
	s.m.stepSeconds.Observe(time.Since(stepStart).Seconds())
	s.m.recordsTotal.Add(int64(timed))
	records.Add(int64(timed))
	return pushErr
}

// detachLocked finalizes a session's state, captures the summary and
// report the read endpoints keep serving, and recycles the analyzer
// into the pool. A failed session keeps the partial analysis computed
// up to the failure point. sess.mu must be held.
func (s *server) detachLocked(sess *session, state, errMsg string) {
	sess.state = state
	sess.err = errMsg
	sess.finished.Store(true)
	if sa := sess.sa; sa != nil {
		sess.stats = sa.Stats()
		if hdr, ok := sa.Header(); ok {
			sess.hdr, sess.hasHdr = hdr, true
		}
		if sess.final == nil {
			sess.final = sa.Snapshot()
		}
		sess.sa = nil
		sa.Reset()
		s.saPool.Put(sa)
	}
}

func (s *server) fail(sess *session, msg string) {
	sess.mu.Lock()
	if sess.state == "active" {
		s.detachLocked(sess, "failed", msg)
		s.m.sessionsFailed.Inc()
	}
	sess.mu.Unlock()
	s.log.Warn("session failed", "session", sess.id, "err", msg)
}

// sessionInfo is the summary view served by /sessions and embedded in
// every report payload.
type sessionInfo struct {
	Session           string  `json:"session"`
	Cell              string  `json:"cell"`
	Scenario          string  `json:"scenario,omitempty"`
	State             string  `json:"state"`
	Error             string  `json:"error,omitempty"`
	Records           int     `json:"records"`
	Windows           int     `json:"windows"`
	LateDropped       int     `json:"late_dropped,omitempty"`
	WatermarkUs       int64   `json:"watermark_us"`
	DurationUs        int64   `json:"duration_us"`
	ChainEvents       int     `json:"chain_events"`
	DegradationPerMin float64 `json:"degradation_events_per_min"`
}

type nodeStat struct {
	Events    int     `json:"events"`
	PerMinute float64 `json:"per_min"`
}

type chainStat struct {
	Chain  string `json:"chain"`
	Events int    `json:"events"`
}

// reportPayload is the full per-session report served by /report/{id}.
type reportPayload struct {
	sessionInfo
	Causes       map[string]nodeStat `json:"causes"`
	Consequences map[string]nodeStat `json:"consequences"`
	TopChains    []chainStat         `json:"top_chains"`
}

// snapshot returns the session's current report (final when done, live
// snapshot while active) plus its summary info. Callers hold no locks.
func (s *server) snapshot(sess *session) (*core.Report, sessionInfo) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	stats := sess.stats
	hdr, hasHdr := sess.hdr, sess.hasHdr
	if sess.sa != nil {
		stats = sess.sa.Stats()
		hdr, hasHdr = sess.sa.Header()
	}
	info := sessionInfo{
		Session:     sess.id,
		State:       sess.state,
		Error:       sess.err,
		Records:     stats.Records,
		Windows:     stats.Windows,
		LateDropped: stats.LateDropped,
		WatermarkUs: int64(stats.Watermark),
	}
	if hasHdr {
		info.Cell = hdr.CellName
		info.Scenario = hdr.Scenario
		info.DurationUs = int64(hdr.Duration)
	}
	rep := sess.final
	if rep == nil && sess.sa != nil {
		rep = sess.sa.Snapshot()
	}
	if rep != nil {
		info.ChainEvents = rep.TotalChainEvents()
		info.DegradationPerMin = rep.DegradationEventsPerMinute(domino.ConsequenceClasses())
	}
	return rep, info
}

func (s *server) reportPayload(sess *session) reportPayload {
	rep, info := s.snapshot(sess)
	p := reportPayload{
		sessionInfo:  info,
		Causes:       map[string]nodeStat{},
		Consequences: map[string]nodeStat{},
	}
	if rep == nil {
		return p
	}
	for _, c := range domino.CauseClasses() {
		p.Causes[c] = nodeStat{Events: rep.EventCount(c), PerMinute: rep.EventsPerMinute(c)}
	}
	for _, c := range domino.ConsequenceClasses() {
		p.Consequences[c] = nodeStat{Events: rep.EventCount(c), PerMinute: rep.EventsPerMinute(c)}
	}
	for _, cc := range rep.TopChains(10) {
		p.TopChains = append(p.TopChains, chainStat{Chain: cc.Chain.String(), Events: cc.Events})
	}
	return p
}

func (s *server) handleSessions(w http.ResponseWriter, r *http.Request) {
	var all []*session
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			all = append(all, sess)
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	infos := make([]sessionInfo, 0, len(all))
	for _, sess := range all {
		_, info := s.snapshot(sess)
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, s.reportPayload(sess))
}

// parseQuery maps /query and /incidents/similar URL parameters onto a
// store query. from/to are absolute microsecond timestamps; last is a
// duration back from the fleet clock.
func (s *server) parseQuery(r *http.Request) (rcastore.Query, error) {
	q := rcastore.Query{
		Cell:     r.URL.Query().Get("cell"),
		Scenario: r.URL.Query().Get("scenario"),
		Session:  r.URL.Query().Get("session"),
		Cause:    r.URL.Query().Get("cause"),
	}
	if v := r.URL.Query().Get("fired"); v != "" {
		q.FiredAll = strings.Split(v, ",")
	}
	for name, dst := range map[string]*sim.Time{"from": &q.From, "to": &q.To} {
		if v := r.URL.Query().Get(name); v != "" {
			us, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return q, fmt.Errorf("bad %s %q: want microseconds since epoch", name, v)
			}
			*dst = sim.Time(us)
		}
	}
	if v := r.URL.Query().Get("last"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("bad last %q: want a positive duration like 1h", v)
		}
		q.From = s.now() - sim.Time(d/time.Microsecond)
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q", v)
		}
		q.Limit = n
	}
	return q, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// handleQuery serves longitudinal reads over the fleet RCA store:
// matching records by default, or an aggregation when agg=top_chains
// (ranked by total chain runs, top k) or agg=cause_rates (per-cell
// cause-class rates over bucket-sized time buckets).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := s.parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch agg := r.URL.Query().Get("agg"); agg {
	case "":
		writeJSON(w, http.StatusOK, map[string]any{"records": s.store.Query(q)})
	case "top_chains":
		k, err := intParam(r, "k", 10)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"top_chains": s.store.TopChains(q, k)})
	case "cause_rates":
		bucket := 10 * time.Minute
		if v := r.URL.Query().Get("bucket"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad bucket %q: want a positive duration like 10m", v))
				return
			}
			bucket = d
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"cause_rates": s.store.CauseRates(q, sim.Time(bucket/time.Microsecond)),
		})
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown agg %q (want top_chains or cause_rates)", agg))
	}
}

// handleSimilar serves nearest-prior-incident lookups: the probe
// signature comes from an already-stored session (session=) or an
// explicit fired= node list, and candidates rank by fired-node Hamming
// distance, ties to the most recent.
func (s *server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 5)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var fired []string
	probeSession := r.URL.Query().Get("session")
	switch {
	case probeSession != "":
		rec, ok := s.store.Fired(probeSession)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("session %q has no stored report", probeSession))
			return
		}
		fired = rec.Fired
	case r.URL.Query().Get("fired") != "":
		fired = strings.Split(r.URL.Query().Get("fired"), ",")
	default:
		httpError(w, http.StatusBadRequest, "want session=ID or fired=node,node,...")
		return
	}
	q := rcastore.Query{Cell: r.URL.Query().Get("cell"), Scenario: r.URL.Query().Get("scenario")}
	matches := s.store.Similar(fired, q, k+1)
	// The probe session is trivially its own nearest incident; drop it.
	out := matches[:0]
	for _, m := range matches {
		if probeSession != "" && m.Session == probeSession {
			continue
		}
		out = append(out, m)
	}
	if len(out) > k {
		out = out[:k]
	}
	writeJSON(w, http.StatusOK, map[string]any{"fired": fired, "matches": out})
}

// runStdin analyzes a single session from standard input through the
// streaming path and prints the final report.
func (s *server) runStdin(in io.Reader, stdout, stderr io.Writer) int {
	sa := s.newStream()
	rep, err := domino.StreamRecords(in, sa)
	if err != nil {
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	}
	stats := sa.Stats()

	fmt.Fprintf(stdout, "session: %s (%v, %d records, %d windows, peak buffer %d samples)\n\n",
		rep.CellName, rep.Duration, stats.Records, stats.Windows, stats.MaxBuffered)
	fmt.Fprintln(stdout, "5G causes (events/min):")
	for _, c := range domino.CauseClasses() {
		fmt.Fprintf(stdout, "  %-18s %6.2f\n", c, rep.EventsPerMinute(c))
	}
	fmt.Fprintln(stdout, "\nWebRTC consequences (events/min):")
	for _, c := range domino.ConsequenceClasses() {
		fmt.Fprintf(stdout, "  %-22s %6.2f\n", c, rep.EventsPerMinute(c))
	}
	fmt.Fprintf(stdout, "\ndegradation events/min: %.2f\n",
		rep.DegradationEventsPerMinute(domino.ConsequenceClasses()))
	fmt.Fprintln(stdout, "\ntop matched chains:")
	for _, cc := range rep.TopChains(10) {
		fmt.Fprintf(stdout, "  %4d×  %s\n", cc.Events, cc.Chain.String())
	}
	return 0
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
