// Command dominod is the live, operator-side Domino analysis service:
// the always-on deployment mode the paper frames for its detector. It
// ingests many concurrent session trace streams (JSONL over HTTP) and
// serves per-session root-cause reports and aggregate cause-class
// counters while the calls are still in progress, using the streaming
// analyzer's O(window) per-session state.
//
// Usage:
//
//	dominod [-addr :8077] [-graph chains.txt] [-max-streams 64]
//	        [-lateness 0s] [-drop-late] [-v]
//	dominod -stdin < call.jsonl
//
// Endpoints:
//
//	POST /ingest?session=ID   chunked JSONL body; analyzed as it arrives
//	GET  /sessions            all sessions with live summary stats
//	GET  /report/{id}         full report (live snapshot while active)
//	GET  /metrics             aggregate counters, Prometheus text format
//	GET  /healthz             readiness probe
//
// Session bodies are analyzed record-by-record as they upload, so a
// live collector can keep one chunked POST open for the whole call and
// poll /report/{id} for diagnosis in flight. Admission is bounded by
// -max-streams (a parallel.Limiter): excess uploads block until a slot
// frees, giving natural backpressure instead of unbounded memory. With
// -stdin the service analyzes a single session from standard input and
// prints the final report, mirroring cmd/domino but via the streaming
// path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stream"
	"github.com/domino5g/domino/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dominod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8077", "listen address")
	graphPath := fs.String("graph", "", "path to a causal-chain DSL file (default: built-in Fig. 9 graph)")
	maxStreams := fs.Int("max-streams", 64, "maximum concurrently ingesting session streams")
	maxSessions := fs.Int("max-sessions", 1024, "retained sessions before the oldest finished ones are evicted")
	lateness := fs.Duration("lateness", 0, "accepted record out-of-orderness (e.g. 100ms)")
	dropLate := fs.Bool("drop-late", false, "count and drop too-late records instead of failing the stream")
	stdin := fs.Bool("stdin", false, "analyze one session from standard input and exit")
	verbose := fs.Bool("v", false, "log per-session lifecycle events")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	graph := domino.DefaultGraph()
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fmt.Fprintln(stderr, "dominod:", err)
			return 1
		}
		g, err := domino.ParseChains(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "dominod: parsing %s: %v\n", *graphPath, err)
			return 1
		}
		graph = g
	}
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
	if err != nil {
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	}

	srv := newServer(analyzer, serverOptions{
		MaxStreams:  *maxStreams,
		MaxSessions: *maxSessions,
		Lateness:    sim.Time(*lateness / time.Microsecond),
		DropLate:    *dropLate,
		Log:         log.New(stderr, "dominod: ", log.LstdFlags),
		Verbose:     *verbose,
	})

	if *stdin {
		return srv.runStdin(os.Stdin, stdout, stderr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	srv.log.Printf("listening on %s (%d stream slots, %d chains)", *addr, *maxStreams, len(analyzer.Chains()))
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
		srv.log.Printf("shut down")
		return 0
	}
}

type serverOptions struct {
	MaxStreams  int
	MaxSessions int
	Lateness    sim.Time
	DropLate    bool
	Log         *log.Logger
	Verbose     bool
}

// server multiplexes concurrent session streams over one shared
// analyzer and keeps aggregate counters across them.
type server struct {
	analyzer *core.Analyzer
	limiter  *parallel.Limiter
	opts     serverOptions
	log      *log.Logger

	causeClass, consequenceClass map[string]bool

	mu       sync.Mutex
	sessions map[string]*session
	order    []string
	nextID   int

	// Aggregate counters (/metrics).
	recordsTotal, windowsTotal, lateDroppedTotal atomic.Int64
	sessionsTotal, sessionsDone, sessionsFailed  atomic.Int64
	chainEventsTotal                             atomic.Int64
	nodeMu                                       sync.Mutex
	nodeEventsTotal                              map[string]int64
}

type session struct {
	id string

	mu    sync.Mutex
	sa    *stream.Analyzer
	state string // "active", "done", "failed"
	err   string
	final *core.Report
}

func newServer(analyzer *core.Analyzer, opts serverOptions) *server {
	if opts.Log == nil {
		opts.Log = log.New(io.Discard, "", 0)
	}
	s := &server{
		analyzer:         analyzer,
		limiter:          parallel.NewLimiter(opts.MaxStreams),
		opts:             opts,
		log:              opts.Log,
		causeClass:       map[string]bool{},
		consequenceClass: map[string]bool{},
		sessions:         map[string]*session{},
		nodeEventsTotal:  map[string]int64{},
	}
	for _, c := range domino.CauseClasses() {
		s.causeClass[c] = true
	}
	for _, c := range domino.ConsequenceClasses() {
		s.consequenceClass[c] = true
	}
	return s
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /report/{id}", s.handleReport)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// newStream builds one session's streaming analyzer wired into the
// aggregate counters. Per-window results are not retained — the
// service serves event-run statistics, so a session's report stays
// bounded by its event runs however long the call lasts.
func (s *server) newStream() *stream.Analyzer {
	return stream.New(s.analyzer, stream.Config{
		Lateness:    s.opts.Lateness,
		DropLate:    s.opts.DropLate,
		DropWindows: true,
		OnWindow:    func(core.WindowResult) { s.windowsTotal.Add(1) },
		OnNodeEvent: func(r core.EventRun) {
			if s.causeClass[r.Node] || s.consequenceClass[r.Node] {
				s.nodeMu.Lock()
				s.nodeEventsTotal[r.Node]++
				s.nodeMu.Unlock()
			}
		},
		OnChainEvent: func(core.ChainRun) { s.chainEventsTotal.Add(1) },
	})
}

func (s *server) register(id string) (*session, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("s%04d", s.nextID)
	}
	if old, exists := s.sessions[id]; exists {
		// A failed ingest must not squat on its ID: collectors retry
		// the same call ID, and only an active or completed session is
		// worth protecting from replacement.
		old.mu.Lock()
		failed := old.state == "failed"
		old.mu.Unlock()
		if !failed {
			return nil, id, false
		}
		s.dropLocked(id)
	}
	s.evictLocked()
	sess := &session{id: id, state: "active", sa: s.newStream()}
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.sessionsTotal.Add(1)
	return sess, id, true
}

// dropLocked removes one session; s.mu must be held.
func (s *server) dropLocked(id string) {
	delete(s.sessions, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// evictLocked bounds retention: once MaxSessions is reached, the
// oldest finished (done or failed) sessions are dropped. Active
// sessions are never evicted; their count is already bounded by the
// admission limiter plus waiting uploads. s.mu must be held.
func (s *server) evictLocked() {
	max := s.opts.MaxSessions
	if max <= 0 {
		return
	}
	for len(s.sessions) >= max {
		evicted := false
		for _, id := range s.order {
			sess := s.sessions[id]
			sess.mu.Lock()
			finished := sess.state != "active"
			sess.mu.Unlock()
			if finished {
				s.dropLocked(id)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

func (s *server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.register(r.URL.Query().Get("session"))
	if !ok {
		httpError(w, http.StatusConflict, fmt.Sprintf("session %q already exists", id))
		return
	}
	if err := s.limiter.Acquire(r.Context()); err != nil {
		s.fail(sess, fmt.Sprintf("admission aborted: %v", err))
		httpError(w, http.StatusServiceUnavailable, "ingest capacity saturated and client gave up")
		return
	}
	defer s.limiter.Release()
	if s.opts.Verbose {
		s.log.Printf("session %s: ingest started", id)
	}

	sr := trace.NewStreamReader(r.Body)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.fail(sess, err.Error())
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		sess.mu.Lock()
		pushErr := sess.sa.Push(rec)
		if pushErr == nil {
			if _, hasTime := rec.Time(); hasTime {
				s.recordsTotal.Add(1)
			}
		}
		sess.mu.Unlock()
		if pushErr != nil {
			s.fail(sess, pushErr.Error())
			httpError(w, http.StatusBadRequest, pushErr.Error())
			return
		}
	}

	sess.mu.Lock()
	stats := sess.sa.Stats()
	rep, err := sess.sa.Close()
	if err != nil {
		sess.state = "failed"
		sess.err = err.Error()
		sess.mu.Unlock()
		s.sessionsFailed.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.state = "done"
	sess.final = rep
	sess.mu.Unlock()
	s.sessionsDone.Add(1)
	s.lateDroppedTotal.Add(int64(stats.LateDropped))
	if s.opts.Verbose {
		s.log.Printf("session %s: done (%d records, %d windows, %d chain events)",
			id, stats.Records, stats.Windows, rep.TotalChainEvents())
	}
	writeJSON(w, http.StatusOK, s.reportPayload(sess))
}

func (s *server) fail(sess *session, msg string) {
	sess.mu.Lock()
	if sess.state == "active" {
		sess.state = "failed"
		sess.err = msg
		s.sessionsFailed.Add(1)
	}
	sess.mu.Unlock()
	s.log.Printf("session %s: failed: %s", sess.id, msg)
}

// sessionInfo is the summary view served by /sessions and embedded in
// every report payload.
type sessionInfo struct {
	Session           string  `json:"session"`
	Cell              string  `json:"cell"`
	Scenario          string  `json:"scenario,omitempty"`
	State             string  `json:"state"`
	Error             string  `json:"error,omitempty"`
	Records           int     `json:"records"`
	Windows           int     `json:"windows"`
	LateDropped       int     `json:"late_dropped,omitempty"`
	WatermarkUs       int64   `json:"watermark_us"`
	DurationUs        int64   `json:"duration_us"`
	ChainEvents       int     `json:"chain_events"`
	DegradationPerMin float64 `json:"degradation_events_per_min"`
}

type nodeStat struct {
	Events    int     `json:"events"`
	PerMinute float64 `json:"per_min"`
}

type chainStat struct {
	Chain  string `json:"chain"`
	Events int    `json:"events"`
}

// reportPayload is the full per-session report served by /report/{id}.
type reportPayload struct {
	sessionInfo
	Causes       map[string]nodeStat `json:"causes"`
	Consequences map[string]nodeStat `json:"consequences"`
	TopChains    []chainStat         `json:"top_chains"`
}

// snapshot returns the session's current report (final when done, live
// snapshot while active) plus its summary info. Callers hold no locks.
func (s *server) snapshot(sess *session) (*core.Report, sessionInfo) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	stats := sess.sa.Stats()
	info := sessionInfo{
		Session:     sess.id,
		State:       sess.state,
		Error:       sess.err,
		Records:     stats.Records,
		Windows:     stats.Windows,
		LateDropped: stats.LateDropped,
		WatermarkUs: int64(stats.Watermark),
	}
	if hdr, ok := sess.sa.Header(); ok {
		info.Cell = hdr.CellName
		info.Scenario = hdr.Scenario
		info.DurationUs = int64(hdr.Duration)
	}
	rep := sess.final
	if rep == nil {
		rep = sess.sa.Snapshot()
	}
	if rep != nil {
		info.ChainEvents = rep.TotalChainEvents()
		info.DegradationPerMin = rep.DegradationEventsPerMinute(domino.ConsequenceClasses())
	}
	return rep, info
}

func (s *server) reportPayload(sess *session) reportPayload {
	rep, info := s.snapshot(sess)
	p := reportPayload{
		sessionInfo:  info,
		Causes:       map[string]nodeStat{},
		Consequences: map[string]nodeStat{},
	}
	if rep == nil {
		return p
	}
	for _, c := range domino.CauseClasses() {
		p.Causes[c] = nodeStat{Events: rep.EventCount(c), PerMinute: rep.EventsPerMinute(c)}
	}
	for _, c := range domino.ConsequenceClasses() {
		p.Consequences[c] = nodeStat{Events: rep.EventCount(c), PerMinute: rep.EventsPerMinute(c)}
	}
	for _, cc := range rep.TopChains(10) {
		p.TopChains = append(p.TopChains, chainStat{Chain: cc.Chain.String(), Events: cc.Events})
	}
	return p
}

func (s *server) handleSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	infos := make([]sessionInfo, 0, len(ids))
	for _, id := range ids {
		if sess := s.lookup(id); sess != nil {
			_, info := s.snapshot(sess)
			infos = append(infos, info)
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, s.reportPayload(sess))
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	active := 0
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.state == "active" {
			active++
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "dominod_sessions_total %d\n", s.sessionsTotal.Load())
	fmt.Fprintf(w, "dominod_sessions_active %d\n", active)
	fmt.Fprintf(w, "dominod_sessions_done_total %d\n", s.sessionsDone.Load())
	fmt.Fprintf(w, "dominod_sessions_failed_total %d\n", s.sessionsFailed.Load())
	fmt.Fprintf(w, "dominod_stream_slots %d\n", s.limiter.Cap())
	fmt.Fprintf(w, "dominod_stream_slots_in_use %d\n", s.limiter.InUse())
	fmt.Fprintf(w, "dominod_records_total %d\n", s.recordsTotal.Load())
	fmt.Fprintf(w, "dominod_windows_total %d\n", s.windowsTotal.Load())
	fmt.Fprintf(w, "dominod_late_dropped_total %d\n", s.lateDroppedTotal.Load())
	fmt.Fprintf(w, "dominod_chain_events_total %d\n", s.chainEventsTotal.Load())

	s.nodeMu.Lock()
	nodes := make([]string, 0, len(s.nodeEventsTotal))
	for n := range s.nodeEventsTotal {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		class := "consequence"
		if s.causeClass[n] {
			class = "cause"
		}
		fmt.Fprintf(w, "dominod_node_events_total{node=%q,class=%q} %d\n", n, class, s.nodeEventsTotal[n])
	}
	s.nodeMu.Unlock()
}

// runStdin analyzes a single session from standard input through the
// streaming path and prints the final report.
func (s *server) runStdin(in io.Reader, stdout, stderr io.Writer) int {
	sa := s.newStream()
	rep, err := domino.StreamRecords(in, sa)
	if err != nil {
		fmt.Fprintln(stderr, "dominod:", err)
		return 1
	}
	stats := sa.Stats()

	fmt.Fprintf(stdout, "session: %s (%v, %d records, %d windows, peak buffer %d samples)\n\n",
		rep.CellName, rep.Duration, stats.Records, stats.Windows, stats.MaxBuffered)
	fmt.Fprintln(stdout, "5G causes (events/min):")
	for _, c := range domino.CauseClasses() {
		fmt.Fprintf(stdout, "  %-18s %6.2f\n", c, rep.EventsPerMinute(c))
	}
	fmt.Fprintln(stdout, "\nWebRTC consequences (events/min):")
	for _, c := range domino.ConsequenceClasses() {
		fmt.Fprintf(stdout, "  %-22s %6.2f\n", c, rep.EventsPerMinute(c))
	}
	fmt.Fprintf(stdout, "\ndegradation events/min: %.2f\n",
		rep.DegradationEventsPerMinute(domino.ConsequenceClasses()))
	fmt.Fprintln(stdout, "\ntop matched chains:")
	for _, cc := range rep.TopChains(10) {
		fmt.Fprintf(stdout, "  %4d×  %s\n", cc.Events, cc.Chain.String())
	}
	return 0
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
