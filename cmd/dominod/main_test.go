package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

func testAnalyzer(t testing.TB) *core.Analyzer {
	t.Helper()
	a, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sessionTrace(t testing.TB, cell ran.CellConfig, seed uint64, d sim.Time) (*trace.Set, []byte) {
	t.Helper()
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cell, seed))
	if err != nil {
		t.Fatal(err)
	}
	set := sess.Run(d)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, set); err != nil {
		t.Fatal(err)
	}
	return set, buf.Bytes()
}

// TestDominodSmoke is the end-to-end acceptance check (also run by
// `make dominod-smoke`): start the service, POST 8 session streams
// concurrently, and assert every per-session report matches the batch
// analyzer's results for the same trace.
func TestDominodSmoke(t *testing.T) {
	analyzer := testAnalyzer(t)
	srv := newServer(analyzer, serverOptions{MaxStreams: 8})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const n = 8
	presets := ran.Presets()
	type sessionCase struct {
		id   string
		set  *trace.Set
		body []byte
	}
	cases := make([]sessionCase, n)
	for i := 0; i < n; i++ {
		set, body := sessionTrace(t, presets[i%len(presets)], uint64(100+i), 10*sim.Second)
		cases[i] = sessionCase{id: fmt.Sprintf("call-%d", i), set: set, body: body}
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/ingest?session="+cases[i].id, "application/jsonl",
				bytes.NewReader(cases[i].body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("ingest %s: status %d: %s", cases[i].id, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range cases {
		batch, err := analyzer.Analyze(c.set)
		if err != nil {
			t.Fatal(err)
		}
		var rep reportPayload
		getJSON(t, ts.URL+"/report/"+c.id, &rep)
		if rep.State != "done" {
			t.Fatalf("%s: state %q (error %q)", c.id, rep.State, rep.Error)
		}
		if rep.Cell != c.set.CellName {
			t.Fatalf("%s: cell %q, want %q", c.id, rep.Cell, c.set.CellName)
		}
		if rep.Windows != len(batch.Windows) {
			t.Fatalf("%s: %d windows, batch %d", c.id, rep.Windows, len(batch.Windows))
		}
		if rep.ChainEvents != batch.TotalChainEvents() {
			t.Fatalf("%s: %d chain events, batch %d", c.id, rep.ChainEvents, batch.TotalChainEvents())
		}
		wantDeg := batch.DegradationEventsPerMinute(domino.ConsequenceClasses())
		if rep.DegradationPerMin != wantDeg {
			t.Fatalf("%s: degradation %v/min, batch %v/min", c.id, rep.DegradationPerMin, wantDeg)
		}
		for _, cause := range domino.CauseClasses() {
			if rep.Causes[cause].Events != batch.EventCount(cause) {
				t.Fatalf("%s cause %s: %d events, batch %d", c.id, cause, rep.Causes[cause].Events, batch.EventCount(cause))
			}
		}
		for _, cons := range domino.ConsequenceClasses() {
			if rep.Consequences[cons].Events != batch.EventCount(cons) {
				t.Fatalf("%s consequence %s: %d events, batch %d", c.id, cons, rep.Consequences[cons].Events, batch.EventCount(cons))
			}
		}
	}

	var infos []sessionInfo
	getJSON(t, ts.URL+"/sessions", &infos)
	if len(infos) != n {
		t.Fatalf("/sessions lists %d sessions, want %d", len(infos), n)
	}
	for _, info := range infos {
		if info.State != "done" {
			t.Fatalf("session %s not done: %+v", info.Session, info)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("dominod_sessions_total %d", n),
		fmt.Sprintf("dominod_sessions_done_total %d", n),
		"dominod_sessions_failed_total 0",
		"dominod_node_events_total{node=",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestIngestRejections covers the protocol edges: duplicate session
// IDs, malformed bodies, and missing sessions.
func TestIngestRejections(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Mosolabs(), 3, 6*sim.Second)
	resp, err := http.Post(ts.URL+"/ingest?session=dup", "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest?session=dup", "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate session: %d, want 409", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/ingest", "application/jsonl", strings.NewReader("not jsonl\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/report/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing report: %d, want 404", resp.StatusCode)
	}

	// A failed ingest must not squat on its session ID: the client's
	// retry with the same ID replaces it.
	resp, err = http.Post(ts.URL+"/ingest?session=retry", "application/jsonl", strings.NewReader("broken\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken first attempt: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest?session=retry", "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after failure: %d, want 200", resp.StatusCode)
	}
	var rep reportPayload
	getJSON(t, ts.URL+"/report/retry", &rep)
	if rep.State != "done" {
		t.Fatalf("retried session state %q", rep.State)
	}
}

// TestFailedSessionKeepsPartialReport pins the recycling path: when a
// session fails mid-upload, its analyzer is returned to the pool but
// /report/{id} must still serve the analysis computed up to the
// failure point.
func TestFailedSessionKeepsPartialReport(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Amarisoft(), 3, 10*sim.Second)
	lines := bytes.SplitAfter(body, []byte("\n"))
	partial := bytes.Join(lines[:len(lines)*3/4], nil)
	partial = append(partial, []byte("not jsonl\n")...)

	resp, err := http.Post(ts.URL+"/ingest?session=broken", "application/jsonl", bytes.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken upload: %d, want 400", resp.StatusCode)
	}
	var rep reportPayload
	getJSON(t, ts.URL+"/report/broken", &rep)
	if rep.State != "failed" || rep.Error == "" {
		t.Fatalf("state %q error %q, want a failed session with its error", rep.State, rep.Error)
	}
	if rep.Records == 0 || rep.Windows == 0 {
		t.Fatalf("no partial progress recorded: %+v", rep.sessionInfo)
	}
	// The report body (not just the summary counters) must survive the
	// analyzer's return to the pool: this prefix detects consequence
	// events, so the degradation rate computed from the snapshot is
	// nonzero.
	if rep.DegradationPerMin == 0 {
		t.Fatalf("partial report body lost: %+v", rep.sessionInfo)
	}
	events := 0
	for _, st := range rep.Consequences {
		events += st.Events
	}
	for _, st := range rep.Causes {
		events += st.Events
	}
	if events == 0 {
		t.Fatalf("partial report serves no cause/consequence events: %+v", rep)
	}
}

// TestSessionEviction bounds retention: with MaxSessions 3, finishing
// a fourth session evicts the oldest finished one.
func TestSessionEviction(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2, MaxSessions: 3})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Mosolabs(), 6, 6*sim.Second)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(fmt.Sprintf("%s/ingest?session=e%d", ts.URL, i), "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest e%d: %d", i, resp.StatusCode)
		}
	}
	var infos []sessionInfo
	getJSON(t, ts.URL+"/sessions", &infos)
	if len(infos) > 3 {
		t.Fatalf("retained %d sessions, cap is 3", len(infos))
	}
	// The newest session must survive; the oldest must be gone.
	resp, err := http.Get(ts.URL + "/report/e4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("newest session evicted: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/report/e0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest session still retained: %d", resp.StatusCode)
	}
}

// TestLiveSnapshotDuringIngest streams a session in two halves through
// a pipe and asserts /report/{id} serves a live snapshot mid-upload.
func TestLiveSnapshotDuringIngest(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	set, body := sessionTrace(t, ran.Amarisoft(), 12, 10*sim.Second)
	lines := bytes.SplitAfter(body, []byte("\n"))
	half := len(lines) / 2

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/ingest?session=live", "application/jsonl", pr)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	sent := make(chan struct{})
	go func() {
		for _, l := range lines[:half] {
			pw.Write(l)
		}
		close(sent)
	}()
	<-sent
	// The server consumes the pipe asynchronously; poll until the live
	// snapshot reflects progress.
	var rep reportPayload
	for i := 0; i < 400; i++ {
		getJSON(t, ts.URL+"/report/live", &rep)
		if rep.State == "active" && rep.Records > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rep.State != "active" || rep.Records == 0 {
		t.Fatalf("no live snapshot mid-upload: %+v", rep.sessionInfo)
	}
	if rep.Cell != set.CellName {
		t.Fatalf("live snapshot cell %q", rep.Cell)
	}
	for _, l := range lines[half:] {
		pw.Write(l)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/report/live", &rep)
	if rep.State != "done" {
		t.Fatalf("final state %q", rep.State)
	}
}

// TestRunStdin covers the single-session CLI mode end to end.
func TestRunStdin(t *testing.T) {
	_, body := sessionTrace(t, ran.Mosolabs(), 4, 8*sim.Second)
	var out, errOut bytes.Buffer
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 1})
	if code := srv.runStdin(bytes.NewReader(body), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"degradation events/min", "5G causes", "peak buffer"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdin output missing %q:\n%s", want, out.String())
		}
	}
	if code := srv.runStdin(strings.NewReader("garbage\n"), &out, &errOut); code != 1 {
		t.Fatalf("garbage stdin: exit %d, want 1", code)
	}
}

// TestQueryAndSimilarEndpoints exercises the longitudinal store path:
// completed sessions are auto-persisted, /query serves records and
// aggregations that match batch analysis, and /incidents/similar ranks
// prior incidents by fired-node distance.
func TestQueryAndSimilarEndpoints(t *testing.T) {
	analyzer := testAnalyzer(t)
	const fleetNow = sim.Time(1_700_000_000_000_000) // fixed fleet clock, µs
	srv := newServer(analyzer, serverOptions{MaxStreams: 2, Now: func() sim.Time { return fleetNow }})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	cells := []ran.CellConfig{ran.Amarisoft(), ran.Amarisoft(), ran.Mosolabs()}
	sets := make([]*trace.Set, len(cells))
	for i, cell := range cells {
		set, body := sessionTrace(t, cell, uint64(40+i), 10*sim.Second)
		sets[i] = set
		resp, err := http.Post(fmt.Sprintf("%s/ingest?session=q%d", ts.URL, i), "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest q%d: %d", i, resp.StatusCode)
		}
	}

	// The stored records must equal FromReport over batch analysis,
	// stamped with the injected fleet clock.
	var recs struct {
		Records []rcastore.Record `json:"records"`
	}
	getJSON(t, ts.URL+"/query", &recs)
	if len(recs.Records) != 3 {
		t.Fatalf("/query returned %d records, want 3", len(recs.Records))
	}
	for i, set := range sets {
		batch, err := analyzer.Analyze(set)
		if err != nil {
			t.Fatal(err)
		}
		want := rcastore.FromReport(fmt.Sprintf("q%d", i), fleetNow-batch.Duration, batch)
		var got *rcastore.Record
		for j := range recs.Records {
			if recs.Records[j].Session == want.Session {
				got = &recs.Records[j]
			}
		}
		if got == nil {
			t.Fatalf("session %s missing from /query", want.Session)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("stored record for %s diverges from batch analysis:\ngot  %+v\nwant %+v", want.Session, *got, want)
		}
	}

	// Cell predicate narrows; the fleet clock drives last=.
	getJSON(t, ts.URL+"/query?cell="+url.QueryEscape(cells[2].Name), &recs)
	if len(recs.Records) != 1 || recs.Records[0].Session != "q2" {
		t.Fatalf("/query?cell= returned %+v", recs.Records)
	}
	getJSON(t, ts.URL+"/query?last=1h", &recs)
	if len(recs.Records) != 3 {
		t.Fatalf("/query?last=1h returned %d records", len(recs.Records))
	}

	var chains struct {
		TopChains []rcastore.ChainAgg `json:"top_chains"`
	}
	getJSON(t, ts.URL+"/query?agg=top_chains&k=5", &chains)
	if len(chains.TopChains) == 0 {
		t.Fatal("/query?agg=top_chains returned no chains (amarisoft sessions fire chains)")
	}
	var rates struct {
		CauseRates []rcastore.CauseBucket `json:"cause_rates"`
	}
	getJSON(t, ts.URL+"/query?agg=cause_rates&bucket=10m", &rates)
	if len(rates.CauseRates) == 0 {
		t.Fatal("/query?agg=cause_rates returned no buckets")
	}

	// q0 and q1 are same-cell same-duration amarisoft runs: each is the
	// other's nearest prior incident, and the probe session itself is
	// excluded.
	var sim0 struct {
		Fired   []string         `json:"fired"`
		Matches []rcastore.Match `json:"matches"`
	}
	getJSON(t, ts.URL+"/incidents/similar?session=q0&k=2", &sim0)
	if len(sim0.Fired) == 0 || len(sim0.Matches) == 0 {
		t.Fatalf("similar probe empty: %+v", sim0)
	}
	for _, m := range sim0.Matches {
		if m.Session == "q0" {
			t.Fatal("probe session listed as its own nearest incident")
		}
	}
	if sim0.Matches[0].Session != "q1" {
		t.Fatalf("nearest incident to q0 = %s, want its twin q1", sim0.Matches[0].Session)
	}

	// Parameter validation.
	for _, bad := range []string{
		"/query?from=notanumber", "/query?last=-5m", "/query?agg=bogus",
		"/query?agg=cause_rates&bucket=0s", "/incidents/similar",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/incidents/similar?session=unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("similar for unknown session: %d, want 404", resp.StatusCode)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if !strings.Contains(string(body), "dominod_rcastore_rows 3") {
		t.Fatalf("/metrics missing dominod_rcastore_rows 3:\n%s", body)
	}

	// Spill the live store and reload it the way run() does at boot:
	// the reloaded history must answer queries identically.
	path := t.TempDir() + "/fleet.jsonl"
	if err := spillStore(srv.store, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := rcastore.Load(f, rcastore.Options{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Query(rcastore.Query{}), srv.store.Query(rcastore.Query{})) {
		t.Fatal("reloaded spill diverges from the live store")
	}
}
