package main

// Fault-tolerance coverage for the ingest surface: load shedding,
// body caps, slot-leak regressions, the resumable-session contract
// (X-Domino-Seq / X-Domino-Eos / watermark), drain behavior, and the
// write-ahead journal wiring. The end-to-end chaos differential lives
// in chaos_test.go.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// postIngest issues one ingest request with the resumable-contract
// headers. seq < 0 omits X-Domino-Seq (the legacy one-shot contract).
func postChunk(t testing.TB, url, session, contentType string, seq int, eos bool, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/ingest?session="+session, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if seq >= 0 {
		req.Header.Set(ingest.HeaderSeq, strconv.Itoa(seq))
	}
	if eos {
		req.Header.Set(ingest.HeaderEos, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// jsonlPrefix returns the first n newline-terminated lines of body.
func jsonlPrefix(t testing.TB, body []byte, n int) []byte {
	t.Helper()
	rest := body
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			t.Fatalf("body has fewer than %d lines", n)
		}
		rest = rest[nl+1:]
	}
	return body[:len(body)-len(rest)]
}

func TestIngestBodyCapReleasesSlot(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2, MaxBody: 2048})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Presets()[0], 7, 5*sim.Second)
	if len(body) <= 2048 {
		t.Fatalf("trace too small (%d bytes) to exercise the cap", len(body))
	}
	resp := postChunk(t, ts.URL, "big", "application/jsonl", -1, false, bytes.NewReader(body))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit upload got %d, want 413", resp.StatusCode)
	}
	drainClose(resp)
	if in := srv.limiter.InUse(); in != 0 {
		t.Fatalf("413 leaked %d limiter slots", in)
	}

	// The ID is burned (failed session) but capacity is not: a fresh
	// under-limit session must sail through.
	small := jsonlPrefix(t, body, 3)
	if len(small) > 2048 {
		t.Fatalf("follow-up body %d bytes, does not fit the cap", len(small))
	}
	resp = postChunk(t, ts.URL, "ok", "application/jsonl", -1, false, bytes.NewReader(small))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up ingest got %d, want 200", resp.StatusCode)
	}
	drainClose(resp)
}

func TestIngestOverloadSheds429(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 1, AdmitWait: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Presets()[0], 8, 2*sim.Second)
	pr, pw := io.Pipe()
	done := make(chan int, 1)
	go func() {
		resp := postChunk(t, ts.URL, "holder", "application/jsonl", -1, false, pr)
		defer drainClose(resp)
		done <- resp.StatusCode
	}()
	// Feed the header so the holder is admitted, then stall.
	if _, err := pw.Write(jsonlPrefix(t, body, 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "holder admitted", func() bool { return srv.limiter.InUse() == 1 })

	resp := postChunk(t, ts.URL, "shed", "application/jsonl", -1, false, bytes.NewReader(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	drainClose(resp)
	// Shed before registration: the rejected ID must not exist.
	if r, _ := http.Get(ts.URL + "/report/shed"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("shed session was registered (report status %d)", r.StatusCode)
	}

	// Unblock the holder; it still completes.
	rest := body[len(jsonlPrefix(t, body, 1)):]
	if _, err := pw.Write(rest); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("holder finished with %d after shed", code)
	}
}

func TestLimiterSlotLeakAcrossFailures(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	for i := 0; i < 12; i++ {
		resp := postChunk(t, ts.URL, fmt.Sprintf("bad-%d", i), "application/jsonl", -1, false,
			strings.NewReader("this is not a trace\n"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed ingest %d got %d, want 400", i, resp.StatusCode)
		}
		drainClose(resp)
	}
	if in := srv.limiter.InUse(); in != 0 {
		t.Fatalf("%d limiter slots leaked across failing sessions", in)
	}
	_, body := sessionTrace(t, ran.Presets()[0], 9, 2*sim.Second)
	resp := postChunk(t, ts.URL, "after", "application/jsonl", -1, false, bytes.NewReader(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after failures got %d, want 200", resp.StatusCode)
	}
	drainClose(resp)
}

func TestResumableJSONLChunksAndDedup(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	set, body := sessionTrace(t, ran.Presets()[0], 11, 5*sim.Second)

	// Chunk 1: records 0..9, no EOS — acked with the watermark.
	resp := postChunk(t, ts.URL, "res", "application/jsonl", 0, false, bytes.NewReader(jsonlPrefix(t, body, 10)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk got %d, want 202", resp.StatusCode)
	}
	var wm ingest.Watermark
	mustDecode(t, resp, &wm)
	if wm.Accepted != 10 || wm.State != "active" {
		t.Fatalf("watermark after chunk = %+v, want 10 accepted", wm)
	}

	// The watermark endpoint agrees.
	getJSON(t, ts.URL+"/sessions/res/watermark", &wm)
	if wm.Accepted != 10 {
		t.Fatalf("GET watermark = %+v", wm)
	}

	// Chunk 2 replays from record 6 (overlapping 4 records) through the
	// end: the overlap must dedup, not double-count.
	rest := body[len(jsonlPrefix(t, body, 6)):]
	resp = postChunk(t, ts.URL, "res", "application/jsonl", 6, true, bytes.NewReader(rest))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("final chunk got %d: %s", resp.StatusCode, b)
	}
	var rep reportPayload
	mustDecode(t, resp, &rep)
	if rep.State != "done" {
		t.Fatalf("state %q, want done", rep.State)
	}
	if got := srv.m.ingestDeduped.Value(); got != 4 {
		t.Fatalf("deduped %d records, want the 4-record overlap", got)
	}

	// Differential: the chunked+overlapped session matches the batch
	// analyzer on the same trace.
	batch, err := srv.analyzer.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != len(batch.Windows) || rep.ChainEvents != batch.TotalChainEvents() {
		t.Fatalf("resumed session diverged: %d windows / %d chain events, batch %d / %d",
			rep.Windows, rep.ChainEvents, len(batch.Windows), batch.TotalChainEvents())
	}

	// Idempotent completion replay: a client that lost the 200 resends
	// its final chunk and must get the report again, not a 409.
	resp = postChunk(t, ts.URL, "res", "application/jsonl", 6, true, bytes.NewReader(rest))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("completion replay got %d, want 200", resp.StatusCode)
	}
	drainClose(resp)
}

func TestResumableSeqGap412(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()
	_, body := sessionTrace(t, ran.Presets()[0], 12, 2*sim.Second)
	resp := postChunk(t, ts.URL, "gap", "application/jsonl", 5, true, bytes.NewReader(body))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("gapped upload got %d, want 412", resp.StatusCode)
	}
	drainClose(resp)
	// Nothing registered, nothing leaked: the client restarts from 0.
	if r, _ := http.Get(ts.URL + "/report/gap"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("gapped session was registered (report status %d)", r.StatusCode)
	}
	resp = postChunk(t, ts.URL, "gap", "application/jsonl", 0, true, bytes.NewReader(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart from 0 got %d", resp.StatusCode)
	}
	drainClose(resp)
}

func TestResumableBinaryInterruptAndResend(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	set, _ := sessionTrace(t, ran.Presets()[1], 13, 5*sim.Second)
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, set); err != nil {
		t.Fatal(err)
	}

	// Interrupt a resumable binary upload mid-stream: the session must
	// suspend (stay active, watermark preserved), not fail.
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/ingest?session=bres", pr)
		req.Header.Set("Content-Type", contentTypeBinary)
		req.Header.Set(ingest.HeaderSeq, "0")
		req.Header.Set(ingest.HeaderEos, "1")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			drainClose(resp)
		}
		errc <- err
	}()
	if _, err := pw.Write(bin.Bytes()[:bin.Len()/2]); err != nil {
		t.Fatal(err)
	}
	pw.CloseWithError(fmt.Errorf("connection torn"))
	<-errc

	var wm ingest.Watermark
	waitFor(t, "session suspended with progress", func() bool {
		resp, err := http.Get(ts.URL + "/sessions/bres/watermark")
		if err != nil || resp.StatusCode != http.StatusOK {
			return false
		}
		mustDecode(t, resp, &wm)
		return wm.State == "active" && wm.Accepted > 0
	})

	// Binary clients cannot splice mid-stream: full resend at seq 0,
	// server dedups the accepted prefix.
	resp := postChunk(t, ts.URL, "bres", contentTypeBinary, 0, true, bytes.NewReader(bin.Bytes()))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("binary resend got %d: %s", resp.StatusCode, b)
	}
	var rep reportPayload
	mustDecode(t, resp, &rep)
	if rep.State != "done" {
		t.Fatalf("state %q, want done", rep.State)
	}
	if got := srv.m.ingestDeduped.Value(); int(got) != wm.Accepted {
		t.Fatalf("deduped %d, want the %d-record accepted prefix", got, wm.Accepted)
	}
	batch, err := srv.analyzer.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != len(batch.Windows) || rep.ChainEvents != batch.TotalChainEvents() {
		t.Fatalf("resumed binary session diverged from batch analysis")
	}
}

func TestTruncatedBinaryFailsSessionWithPartialReport(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	set, _ := sessionTrace(t, ran.Presets()[0], 14, 10*sim.Second)
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, set); err != nil {
		t.Fatal(err)
	}
	// Legacy contract (no seq header): a truncated stream is a hard
	// failure, served as a partial report — never a hang.
	cut := bin.Bytes()[:bin.Len()*3/4]
	resp := postChunk(t, ts.URL, "trunc", contentTypeBinary, -1, false, bytes.NewReader(cut))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated binary got %d, want 400", resp.StatusCode)
	}
	drainClose(resp)
	var rep reportPayload
	getJSON(t, ts.URL+"/report/trunc", &rep)
	if rep.State != "failed" || rep.Error == "" {
		t.Fatalf("state %q error %q, want failed with cause", rep.State, rep.Error)
	}
	if rep.Records == 0 {
		t.Fatal("partial report retained no records from before the truncation")
	}

	// Same for a corrupted frame partway through.
	garbled := append([]byte(nil), bin.Bytes()...)
	copy(garbled[len(garbled)/2:], bytes.Repeat([]byte{0x01}, 16))
	resp = postChunk(t, ts.URL, "garbled", contentTypeBinary, -1, false, bytes.NewReader(garbled))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbled binary got %d, want 400", resp.StatusCode)
	}
	drainClose(resp)
	getJSON(t, ts.URL+"/report/garbled", &rep)
	if rep.State != "failed" {
		t.Fatalf("state %q, want failed", rep.State)
	}
	if in := srv.limiter.InUse(); in != 0 {
		t.Fatalf("%d slots leaked by mid-stream failures", in)
	}
}

func TestDrainingRejectsNewWork(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	srv.draining.Store(true)
	_, body := sessionTrace(t, ran.Presets()[0], 15, 2*sim.Second)
	resp := postChunk(t, ts.URL, "late", "application/jsonl", -1, false, bytes.NewReader(body))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("ingest during drain got %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	drainClose(resp)

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	mustDecode(t, hz, &health)
	if hz.StatusCode != http.StatusServiceUnavailable || health["status"] != "draining" {
		t.Fatalf("healthz during drain: %d %v, want 503 draining", hz.StatusCode, health)
	}
}

func TestJournalWiredThroughServer(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "store.spill")
	st, j, _, err := rcastore.Recover(ckpt, filepath.Join(dir, "store.wal"), rcastore.Options{}, rcastore.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	at := sim.Time(1_700_000_000_000_000)
	srv := newServer(testAnalyzer(t), serverOptions{
		MaxStreams: 2, Store: st, Journal: j,
		CheckpointPath: ckpt, CheckpointEvery: 2,
		Now: func() sim.Time { return at },
	})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		_, body := sessionTrace(t, ran.Presets()[i], uint64(20+i), 2*sim.Second)
		resp := postChunk(t, ts.URL, fmt.Sprintf("j-%d", i), "application/jsonl", -1, false, bytes.NewReader(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d got %d", i, resp.StatusCode)
		}
		drainClose(resp)
	}
	if got := srv.m.journalAppends.Value(); got != 2 {
		t.Fatalf("journal recorded %d appends, want 2", got)
	}
	// CheckpointEvery=2 fires an async checkpoint after the second
	// report; it lands as an atomic rename.
	waitFor(t, "async checkpoint written", func() bool {
		if srv.m.journalCheckpoints.Value() == 0 {
			return false
		}
		loaded, err := rcastore.Load(mustOpen(t, ckpt), rcastore.Options{})
		return err == nil && loaded.Len() == 2
	})
}

func mustOpen(t testing.TB, path string) io.Reader {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mustDecode(t testing.TB, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
