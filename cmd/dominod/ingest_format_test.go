package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// binaryTrace encodes the set in the compact binary columnar format.
func binaryTrace(t testing.TB, set *trace.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postIngest(t testing.TB, url, session, contentType string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/ingest?session="+session, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestIngestFormatNegotiation pins the Content-Type dispatch on
// /ingest: the binary media type, the JSONL family, and the sniffing
// fallback (no Content-Type, or the generic octet-stream) must all
// decode — and for every preset the binary-ingested report must be
// identical to its JSONL-ingested twin.
func TestIngestFormatNegotiation(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	for i, cell := range []ran.CellConfig{ran.Amarisoft(), ran.TMobileFDD()} {
		set, jsonlBody := sessionTrace(t, cell, uint64(70+i), 8*sim.Second)
		binBody := binaryTrace(t, set)

		cases := []struct {
			id, ct string
			body   []byte
		}{
			{fmt.Sprintf("jsonl-%d", i), "application/jsonl", jsonlBody},
			{fmt.Sprintf("json-%d", i), "application/json; charset=utf-8", jsonlBody},
			{fmt.Sprintf("bin-%d", i), "application/x-domino-trace", binBody},
			{fmt.Sprintf("bin-sniffed-%d", i), "", binBody},
			{fmt.Sprintf("bin-octet-%d", i), "application/octet-stream", binBody},
			{fmt.Sprintf("jsonl-sniffed-%d", i), "", jsonlBody},
		}
		for _, c := range cases {
			if resp := postIngest(t, ts.URL, c.id, c.ct, c.body); resp.StatusCode != http.StatusOK {
				t.Fatalf("%s (Content-Type %q): status %d, want 200", c.id, c.ct, resp.StatusCode)
			}
		}

		// Every decode path must produce the exact same report.
		var want reportPayload
		getJSON(t, ts.URL+"/report/"+cases[0].id, &want)
		if want.State != "done" {
			t.Fatalf("%s: state %q (error %q)", cases[0].id, want.State, want.Error)
		}
		want.Session = ""
		for _, c := range cases[1:] {
			var got reportPayload
			getJSON(t, ts.URL+"/report/"+c.id, &got)
			got.Session = ""
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s report diverges from its JSONL twin:\ngot  %+v\nwant %+v", c.id, got, want)
			}
		}
	}
}

// TestIngestUnsupportedContentType pins the 415 path: an unknown media
// type is rejected before a session is registered, the error lists the
// supported types, and the rejected session ID stays free.
func TestIngestUnsupportedContentType(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, body := sessionTrace(t, ran.Mosolabs(), 9, 6*sim.Second)
	for _, ct := range []string{
		"text/plain",
		"application/x-www-form-urlencoded", // curl's silent default
		"application/xml",
		"multipart/form-data; boundary", // unparseable params
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest?session=ct415", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ct)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
		for _, want := range []string{"application/x-domino-trace", "application/jsonl", "application/x-ndjson"} {
			if !strings.Contains(string(msg), want) {
				t.Fatalf("415 body for %q does not list %q: %s", ct, want, msg)
			}
		}
	}

	// The rejection happened before registration: the ID is unused and
	// immediately available to a corrected retry.
	resp, err := http.Get(ts.URL + "/report/ct415")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected session registered anyway: %d, want 404", resp.StatusCode)
	}
	if resp := postIngest(t, ts.URL, "ct415", "application/jsonl", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry with supported type: %d, want 200", resp.StatusCode)
	}
}

// TestIngestPerFormatMetrics pins the per-wire-format observability:
// both format series are registered before any ingest, and each ingest
// bumps only its own format's records counter and decode histogram.
func TestIngestPerFormatMetrics(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	// Registered up front: both series scrape at zero pre-ingest.
	fresh := scrape()
	for _, want := range []string{
		`dominod_ingest_records_total{format="binary"} 0`,
		`dominod_ingest_records_total{format="jsonl"} 0`,
		`dominod_ingest_decode_seconds_count{format="binary"} 0`,
		`dominod_ingest_decode_seconds_count{format="jsonl"} 0`,
	} {
		if !strings.Contains(fresh, want) {
			t.Fatalf("fresh /metrics missing %q:\n%s", want, fresh)
		}
	}

	set, jsonlBody := sessionTrace(t, ran.Amarisoft(), 33, 6*sim.Second)
	c := set.Counts()
	records := c.DCI + c.GNBLog + c.Packets + c.WebRTC
	if resp := postIngest(t, ts.URL, "mj", "application/jsonl", jsonlBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("jsonl ingest: %d", resp.StatusCode)
	}
	if resp := postIngest(t, ts.URL, "mb", "application/x-domino-trace", binaryTrace(t, set)); resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest: %d", resp.StatusCode)
	}

	after := scrape()
	for _, want := range []string{
		fmt.Sprintf(`dominod_ingest_records_total{format="binary"} %d`, records),
		fmt.Sprintf(`dominod_ingest_records_total{format="jsonl"} %d`, records),
		fmt.Sprintf("dominod_records_total %d", 2*records),
	} {
		if !strings.Contains(after, want) {
			t.Fatalf("/metrics missing %q after ingest:\n%s", want, after)
		}
	}
	// Each format observed at least one decode chunk.
	for _, f := range ingestFormats {
		zero := fmt.Sprintf(`dominod_ingest_decode_seconds_count{format=%q} 0`, f)
		if strings.Contains(after, zero) {
			t.Fatalf("decode histogram for %s never observed:\n%s", f, after)
		}
	}
}

// TestIngestBinaryTruncated pins fail-fast on a cut-off binary upload:
// the stream errors (no silent truncation), the session fails, and the
// partial analysis up to the cut survives.
func TestIngestBinaryTruncated(t *testing.T) {
	srv := newServer(testAnalyzer(t), serverOptions{MaxStreams: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	set, _ := sessionTrace(t, ran.Amarisoft(), 5, 10*sim.Second)
	body := binaryTrace(t, set)
	if resp := postIngest(t, ts.URL, "cut", "application/x-domino-trace", body[:len(body)*3/4]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated binary ingest: %d, want 400", resp.StatusCode)
	}
	var rep reportPayload
	getJSON(t, ts.URL+"/report/cut", &rep)
	if rep.State != "failed" || rep.Error == "" {
		t.Fatalf("state %q error %q, want failed with its decode error", rep.State, rep.Error)
	}
	if rep.Records == 0 {
		t.Fatalf("no partial progress before the cut: %+v", rep.sessionInfo)
	}
}
