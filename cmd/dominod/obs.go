package main

// This file is dominod's observability surface: the obs.Registry
// instruments behind /metrics (spec-valid Prometheus text exposition),
// the per-session pipeline flight recorder behind
// /debug/flightrec/{id}, the obs.Hooks implementations that feed both
// from the stream/core/rcastore seams, and the /healthz build-info
// payload. Everything on the ingest hot path — counters, histogram
// observations, flight-recorder writes — is allocation-free; scrape-
// time work (snapshotting, GaugeFunc scans) happens only when /metrics
// is read.

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/domino5g/domino"
	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/obs"
)

// metrics bundles dominod's registry and the instruments bumped on hot
// paths. Scrape-time instruments (GaugeFunc/CounterFunc closures over
// server state) are registered by newServer, which owns that state.
type metrics struct {
	reg *obs.Registry
	// names interns every causal-graph node name and chain signature so
	// flight-recorder slots stay pointer-free; frozen after newMetrics.
	names *obs.NameTable

	sessionsTotal   *obs.Counter
	sessionsDone    *obs.Counter
	sessionsFailed  *obs.Counter
	sessionsEvicted *obs.Counter
	recordsTotal    *obs.Counter
	windowsTotal    *obs.Counter
	lateDropped     *obs.Counter
	chainEvents     *obs.Counter
	// nodeEvents maps cause/consequence class nodes to their labeled
	// counter; read-only after newMetrics, so hook lookups are lock-free.
	nodeEvents map[string]*obs.Counter

	poolGets   *obs.Counter
	poolMisses *obs.Counter

	storeQueries *obs.Counter
	storeSpills  *obs.Counter

	// ingestRecords and decodeSeconds are the per-wire-format ingest
	// instruments, keyed by the format label value ("jsonl" or
	// "binary"). Both series of each family are registered up front so
	// scrapes see the full universe at zero; read-only after
	// newMetrics, so hot-path lookups are lock-free.
	ingestRecords map[string]*obs.Counter
	decodeSeconds map[string]*obs.Histogram

	stepSeconds   *obs.Histogram
	insertSeconds *obs.Histogram

	// Resumable-ingest and load-shedding instruments. ingestRejected is
	// keyed by the rejection reason label value; read-only after
	// newMetrics, so hot-path lookups are lock-free.
	ingestResumed     *obs.Counter
	ingestDeduped     *obs.Counter
	ingestInterrupted *obs.Counter
	ingestRejected    map[string]*obs.Counter

	// Write-ahead-journal instruments, fed by journalHooks plus the
	// boot-time recovery stats.
	journalAppends     *obs.Counter
	journalSyncs       *obs.Counter
	journalErrors      *obs.Counter
	journalReplayed    *obs.Counter
	journalDeduped     *obs.Counter
	journalCheckpoints *obs.Counter
}

// rejectReasons is the label universe of dominod_ingest_rejected_total:
// every way /ingest sheds a request before analyzing it.
var rejectReasons = []string{"overload", "body_too_large", "draining", "seq_gap", "busy"}

// ingestFormats is the label universe of the per-format ingest
// instruments: the two wire formats /ingest negotiates.
var ingestFormats = []string{formatJSONL, formatBinary}

// newMetrics registers every statically-known instrument. The metric
// names predate this registry (operators may already scrape them), so
// they are pinned by TestDominodSmoke and must not change.
func newMetrics(analyzer *core.Analyzer) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:   reg,
		names: obs.NewNameTable(),

		sessionsTotal:   reg.Counter("dominod_sessions_total", "Sessions registered since start."),
		sessionsDone:    reg.Counter("dominod_sessions_done_total", "Sessions completed successfully."),
		sessionsFailed:  reg.Counter("dominod_sessions_failed_total", "Sessions that failed during ingest."),
		sessionsEvicted: reg.Counter("dominod_sessions_evicted_total", "Finished sessions evicted from the registry."),
		recordsTotal:    reg.Counter("dominod_records_total", "Trace records accepted across all sessions."),
		windowsTotal:    reg.Counter("dominod_windows_total", "Detection windows evaluated."),
		lateDropped:     reg.Counter("dominod_late_dropped_total", "Records dropped for arriving after their window closed."),
		chainEvents:     reg.Counter("dominod_chain_events_total", "Collapsed causal-chain event runs."),
		nodeEvents:      map[string]*obs.Counter{},

		poolGets:   reg.Counter("dominod_analyzer_pool_gets_total", "Analyzer checkouts from the session pool."),
		poolMisses: reg.Counter("dominod_analyzer_pool_misses_total", "Analyzer checkouts that had to allocate a new analyzer."),

		storeQueries: reg.Counter("dominod_rcastore_queries_total", "RCA-store query evaluations."),
		storeSpills:  reg.Counter("dominod_rcastore_spills_total", "RCA-store spill writes."),

		ingestRecords: map[string]*obs.Counter{},
		decodeSeconds: map[string]*obs.Histogram{},

		stepSeconds:   reg.Histogram("dominod_ingest_step_seconds", "Wall time pushing one decoded chunk through the analyzer.", nil),
		insertSeconds: reg.Histogram("dominod_store_insert_seconds", "Wall time inserting one completed report into the RCA store.", nil),

		ingestResumed:     reg.Counter("dominod_ingest_resumed_total", "Uploads that resumed an interrupted session from its watermark."),
		ingestDeduped:     reg.Counter("dominod_ingest_deduped_records_total", "Replayed records skipped as already accepted during resumption."),
		ingestInterrupted: reg.Counter("dominod_ingest_interrupted_total", "Resumable uploads interrupted mid-stream and suspended for retry."),
		ingestRejected:    map[string]*obs.Counter{},

		journalAppends:     reg.Counter("dominod_journal_appends_total", "Reports appended to the RCA-store write-ahead journal."),
		journalSyncs:       reg.Counter("dominod_journal_syncs_total", "Journal fsync batches flushed to stable storage."),
		journalErrors:      reg.Counter("dominod_journal_errors_total", "Journal append or checkpoint failures."),
		journalReplayed:    reg.Counter("dominod_journal_replayed_total", "Journal records replayed into the store at recovery."),
		journalDeduped:     reg.Counter("dominod_journal_deduped_total", "Journal records skipped at recovery as already checkpointed."),
		journalCheckpoints: reg.Counter("dominod_journal_checkpoints_total", "Atomic store checkpoints written."),
	}

	// One labeled series per load-shed reason, registered up front so
	// scrapes see the full universe at zero.
	for _, reason := range rejectReasons {
		m.ingestRejected[reason] = reg.Counter("dominod_ingest_rejected_total",
			"Ingest requests shed before analysis, by reason.", obs.L("reason", reason))
	}

	// One labeled series per negotiated wire format, registered up
	// front so both formats scrape at zero before their first ingest.
	for _, f := range ingestFormats {
		m.ingestRecords[f] = reg.Counter("dominod_ingest_records_total",
			"Trace records accepted, by negotiated ingest wire format.", obs.L("format", f))
		m.decodeSeconds[f] = reg.Histogram("dominod_ingest_decode_seconds",
			"Wall time decoding one ingest chunk, by negotiated wire format.", nil, obs.L("format", f))
	}

	// One labeled series per cause/consequence class node, registered up
	// front so scrapes see the full universe at zero and hook-time
	// lookups never mutate the map.
	for _, n := range domino.CauseClasses() {
		m.nodeEvents[n] = reg.Counter("dominod_node_events_total",
			"Collapsed node event runs by causal-graph node.", obs.L("node", n), obs.L("class", "cause"))
	}
	for _, n := range domino.ConsequenceClasses() {
		m.nodeEvents[n] = reg.Counter("dominod_node_events_total",
			"Collapsed node event runs by causal-graph node.", obs.L("node", n), obs.L("class", "consequence"))
	}

	// Intern the flight-recorder name universe: every graph node and
	// every chain signature the analyzer can emit.
	for _, n := range analyzer.Graph().Nodes() {
		m.names.Intern(n)
	}
	for _, c := range analyzer.Chains() {
		m.names.Intern(c.String())
	}

	version, goVersion := buildInfo()
	reg.Gauge("domino_build_info",
		"Build metadata; always 1. Version and Go toolchain ride in the labels.",
		obs.L("version", version), obs.L("go_version", goVersion)).Set(1)
	return m
}

// buildInfo reports the main module version and Go toolchain from the
// binary's embedded build information.
func buildInfo() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return version, goVersion
}

// pipelineHooks is the per-session obs.Hooks implementation installed
// on the pooled stream analyzer: every pipeline stage event bumps the
// shared registry counters and (when enabled) lands in the session's
// flight recorder. All methods run under the session lock (single
// writer) and allocate nothing.
type pipelineHooks struct {
	obs.NopHooks
	m   *metrics
	rec *obs.FlightRecorder // nil when -flightrec 0
}

func (h *pipelineHooks) record(ev obs.Event) {
	if h.rec != nil {
		ev.Wall = time.Now().UnixNano()
		h.rec.Record(ev)
	}
}

// WindowEvaluated implements obs.Hooks.
func (h *pipelineHooks) WindowEvaluated(start, end int64) {
	h.m.windowsTotal.Inc()
	h.record(obs.Event{Kind: obs.EvWindowEvaluated, Sim: end})
}

// NodeFired implements obs.Hooks.
func (h *pipelineHooks) NodeFired(node string, at int64) {
	h.record(obs.Event{Kind: obs.EvNodeFired, Sim: at, NameID: h.m.names.ID(node)})
}

// NodeRunClosed implements obs.Hooks.
func (h *pipelineHooks) NodeRunClosed(node string, start, end int64, windows int) {
	if c := h.m.nodeEvents[node]; c != nil {
		c.Inc()
	}
	h.record(obs.Event{Kind: obs.EvNodeRunClosed, Sim: end, NameID: h.m.names.ID(node), N: int64(windows)})
}

// ChainRunOpened implements obs.Hooks.
func (h *pipelineHooks) ChainRunOpened(chain string, at int64) {
	h.record(obs.Event{Kind: obs.EvChainRunOpened, Sim: at, NameID: h.m.names.ID(chain)})
}

// ChainRunClosed implements obs.Hooks.
func (h *pipelineHooks) ChainRunClosed(chain string, start, end int64, windows int) {
	h.m.chainEvents.Inc()
	h.record(obs.Event{Kind: obs.EvChainRunClosed, Sim: end, NameID: h.m.names.ID(chain), N: int64(windows)})
}

// storeHooks feeds RCA-store lifecycle events into the registry. It is
// installed on the (possibly spill-reloaded) store by newServer.
type storeHooks struct {
	obs.NopHooks
	m *metrics
}

// StoreQueried implements obs.Hooks.
func (h *storeHooks) StoreQueried() { h.m.storeQueries.Inc() }

// StoreSpilled implements obs.Hooks.
func (h *storeHooks) StoreSpilled(rows int) { h.m.storeSpills.Inc() }

// journalHooks feeds write-ahead-journal lifecycle events into the
// registry. Installed on the recovered journal by newServer.
type journalHooks struct {
	obs.NopHooks
	m *metrics
}

// JournalAppended implements obs.Hooks.
func (h *journalHooks) JournalAppended(records int) { h.m.journalAppends.Add(int64(records)) }

// JournalSynced implements obs.Hooks.
func (h *journalHooks) JournalSynced() { h.m.journalSyncs.Inc() }

// JournalReplayed implements obs.Hooks.
func (h *journalHooks) JournalReplayed(replayed, deduped int) {
	h.m.journalReplayed.Add(int64(replayed))
	h.m.journalDeduped.Add(int64(deduped))
}

// JournalCheckpointed implements obs.Hooks.
func (h *journalHooks) JournalCheckpointed(rows int) { h.m.journalCheckpoints.Inc() }

// registerGauges wires the scrape-time instruments that read live
// server state: session/shard occupancy, admission-limiter slots, RCA
// store shape, and the analyzer-pool hit ratio.
func (s *server) registerGauges() {
	reg := s.m.reg
	reg.GaugeFunc("dominod_sessions_active", "Sessions currently ingesting.", func() float64 {
		active := 0
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for _, sess := range sh.sessions {
				if !sess.finished.Load() {
					active++
				}
			}
			sh.mu.Unlock()
		}
		return float64(active)
	})
	reg.GaugeFunc("dominod_stream_slots", "Configured concurrent ingest capacity.",
		func() float64 { return float64(s.limiter.Cap()) })
	reg.GaugeFunc("dominod_stream_slots_in_use", "Ingest slots currently held.",
		func() float64 { return float64(s.limiter.InUse()) })
	reg.GaugeFunc("dominod_rcastore_rows", "Rows retained in the RCA store.",
		func() float64 { return float64(s.store.Stats().Rows) })
	reg.GaugeFunc("dominod_rcastore_chains", "Distinct chain signatures the RCA store has seen.",
		func() float64 { return float64(s.store.Stats().Chains) })
	reg.CounterFunc("dominod_rcastore_rows_inserted_total", "Rows ever inserted into the RCA store.",
		func() float64 { return float64(s.store.Stats().InsertedRows) })
	reg.CounterFunc("dominod_rcastore_rows_evicted_total", "Rows evicted from the RCA store by retention.",
		func() float64 { return float64(s.store.Stats().EvictedRows) })
	reg.GaugeFunc("dominod_draining", "1 while the node is draining for shutdown, else 0.", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	if s.opts.NodeID != "" {
		reg.Gauge("dominod_node_info",
			"Node identity; the value is always 1, the node ID rides in the label.",
			obs.L("node", s.opts.NodeID)).Set(1)
	}
	reg.GaugeFunc("dominod_analyzer_pool_hit_ratio", "Fraction of analyzer checkouts served from the pool.", func() float64 {
		gets := s.m.poolGets.Value()
		if gets == 0 {
			return 0
		}
		return 1 - float64(s.m.poolMisses.Value())/float64(gets)
	})
	for i := range s.shards {
		sh := &s.shards[i]
		reg.GaugeFunc("dominod_shard_sessions", "Sessions registered per registry shard.", func() float64 {
			sh.mu.Lock()
			n := len(sh.sessions)
			sh.mu.Unlock()
			return float64(n)
		}, obs.L("shard", fmt.Sprintf("%d", i)))
	}
}

// handleMetrics serves the registry as Prometheus text exposition
// (format 0.0.4, with # HELP/# TYPE metadata). The output always
// passes internal/obs.Lint — pinned by TestMetricsExposition and CI's
// curl smoke.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.m.reg.Snapshot().WriteText(w)
}

// handleHealthz serves readiness plus the build identity surfaced in
// domino_build_info. While the node drains for shutdown it reports
// "draining" with a 503 so load balancers stop routing new sessions
// here before the listener closes.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, goVersion := buildInfo()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{
		"status":     status,
		"node":       s.opts.NodeID,
		"version":    version,
		"go_version": goVersion,
	})
}

// handleFlightRec dumps a session's flight recorder as JSONL, oldest
// event first. ?wall=0 omits the wall-clock column, leaving only the
// deterministic fields — the replay-diff view.
func (s *server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	if sess.rec == nil {
		httpError(w, http.StatusNotFound, "flight recorder disabled (-flightrec 0)")
		return
	}
	withWall := r.URL.Query().Get("wall") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = sess.rec.WriteJSONL(w, withWall)
}

// debugMux serves net/http/pprof on the -debug-addr listener, kept off
// the public mux so profiling exposure is an explicit deployment
// choice.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
