// Command doclint gates godoc coverage in CI. It walks Go package
// directories and reports two classes of missing documentation:
//
//   - every package must carry a package comment (doc-mode, the
//     default), and
//   - with -symbols, every exported top-level symbol must carry a doc
//     comment — the bar the public façade is held to.
//
// Patterns ending in /... recurse. Test files are exempt. Exit status
// is 1 when anything is undocumented, so the Makefile target fails the
// build:
//
//	doclint -symbols .
//	doclint ./internal/... ./cmd/...
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("doclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	symbols := fs.Bool("symbols", false, "also require a doc comment on every exported top-level symbol")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "doclint: no package patterns given (e.g. ./internal/...)")
		return 2
	}
	dirs, err := expand(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "doclint:", err)
		return 2
	}
	problems := 0
	for _, dir := range dirs {
		issues, err := lintDir(dir, *symbols)
		if err != nil {
			fmt.Fprintln(stderr, "doclint:", err)
			return 2
		}
		for _, msg := range issues {
			fmt.Fprintln(stdout, msg)
			problems++
		}
	}
	if problems > 0 {
		fmt.Fprintf(stdout, "doclint: %d undocumented\n", problems)
		return 1
	}
	return 0
}

// expand resolves patterns into the sorted set of directories that
// contain non-test Go files; "dir/..." walks recursively.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) error {
		ok, err := hasGoFiles(dir)
		if err != nil || !ok || seen[dir] {
			return err
		}
		seen[dir] = true
		dirs = append(dirs, dir)
		return nil
	}
	for _, pat := range patterns {
		root, recurse := strings.CutSuffix(pat, "/...")
		root = filepath.Clean(root)
		if !recurse {
			if err := add(root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			if name := d.Name(); path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// lintDir parses one package directory and returns its documentation
// gaps as "path: message" lines.
func lintDir(dir string, symbols bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var issues []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			issues = append(issues, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		if !symbols {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				issues = append(issues, undocumented(fset, decl)...)
			}
		}
	}
	sort.Strings(issues)
	return issues, nil
}

// undocumented reports the exported names a top-level declaration
// exposes without a doc comment. A group doc on a parenthesized
// const/var/type block covers its specs; a doc on the individual spec
// also counts.
func undocumented(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	bad := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && (d.Recv == nil || exportedRecv(d.Recv)) {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			bad(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					bad(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						bad(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method's receiver type is exported —
// methods on unexported types are not part of the documented surface.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
