package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePkg(t *testing.T, dir string, files map[string]string) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func lint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String() + errOut.String(), code
}

func TestPackageDocRequired(t *testing.T) {
	root := t.TempDir()
	writePkg(t, filepath.Join(root, "good"), map[string]string{
		"a.go": "// Package good is documented.\npackage good\n",
	})
	writePkg(t, filepath.Join(root, "bad"), map[string]string{
		"a.go": "package bad\n",
	})
	out, code := lint(t, root+"/...")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "package bad has no package comment") || strings.Contains(out, "good") {
		t.Fatalf("wrong findings:\n%s", out)
	}
	out, code = lint(t, filepath.Join(root, "good"))
	if code != 0 {
		t.Fatalf("documented package flagged (exit %d):\n%s", code, out)
	}
}

func TestSymbolsMode(t *testing.T) {
	dir := writePkg(t, filepath.Join(t.TempDir(), "api"), map[string]string{
		"api.go": `// Package api is documented.
package api

// Documented is fine.
func Documented() {}

func Naked() {}

func unexported() {}

// Grouped docs cover every spec in the block.
const (
	A = 1
	B = 2
)

type Bare struct{}

// T is documented; its undocumented method on an exported type counts,
// methods on unexported types do not.
type T struct{}

func (T) Method() {}

type hidden struct{}

func (hidden) Loud() {}
`,
	})
	out, code := lint(t, "-symbols", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	for _, want := range []string{"function Naked", "type Bare", "method Method", "3 undocumented"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing finding %q:\n%s", want, out)
		}
	}
	for _, banned := range []string{"Documented", "unexported", "value A", "value B", "Loud"} {
		if strings.Contains(out, banned) {
			t.Fatalf("false positive %q:\n%s", banned, out)
		}
	}
}

func TestTestFilesExemptAndBadArgs(t *testing.T) {
	dir := writePkg(t, filepath.Join(t.TempDir(), "p"), map[string]string{
		"a.go":      "// Package p is documented.\npackage p\n",
		"a_test.go": "package p\n\nfunc Helper() {}\n",
	})
	if out, code := lint(t, "-symbols", dir); code != 0 {
		t.Fatalf("test file symbols flagged (exit %d):\n%s", code, out)
	}
	if _, code := lint(t); code != 2 {
		t.Fatalf("no patterns: exit %d, want 2", code)
	}
	if _, code := lint(t, filepath.Join(dir, "missing")); code != 2 {
		t.Fatalf("missing dir: exit %d, want 2", code)
	}
}
