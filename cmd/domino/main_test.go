package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/domino5g/domino"
)

// writeTestTrace simulates a short call and writes its JSONL trace.
func writeTestTrace(t *testing.T, dir string) string {
	t.Helper()
	cell, err := domino.PresetByName("mosolabs")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := domino.NewSession(domino.DefaultSessionConfig(cell, 17))
	if err != nil {
		t.Fatal(err)
	}
	set := sess.Run(8 * domino.Second)
	path := filepath.Join(dir, "call.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := domino.WriteTrace(f, set); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlagValidation is the table-driven CLI contract: exit codes and
// messages for every flag combination, including the required-flag
// error path (missing -trace without -codegen).
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeTestTrace(t, dir)
	badGraph := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badGraph, []byte("not a chain line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.jsonl")
	if err := os.WriteFile(garbage, []byte("not jsonl\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		code       int
		wantStdout string
		wantStderr string
	}{
		{
			name:       "no args",
			args:       nil,
			code:       2,
			wantStderr: "-trace is required unless -codegen",
		},
		{
			name:       "missing trace with graph",
			args:       []string{"-v"},
			code:       2,
			wantStderr: "Usage of domino",
		},
		{
			name:       "unknown flag",
			args:       []string{"-bogus"},
			code:       2,
			wantStderr: "flag provided but not defined",
		},
		{
			name:       "codegen without trace is valid",
			args:       []string{"-codegen", filepath.Join(dir, "det.go")},
			code:       0,
			wantStdout: "wrote generated detector (24 chains)",
		},
		{
			name:       "nonexistent trace file",
			args:       []string{"-trace", filepath.Join(dir, "nope.jsonl")},
			code:       1,
			wantStderr: "no such file",
		},
		{
			name:       "nonexistent graph file",
			args:       []string{"-graph", filepath.Join(dir, "nope.txt"), "-trace", tracePath},
			code:       1,
			wantStderr: "no such file",
		},
		{
			name:       "invalid graph file",
			args:       []string{"-graph", badGraph, "-trace", tracePath},
			code:       1,
			wantStderr: "parsing",
		},
		{
			name:       "malformed trace",
			args:       []string{"-trace", garbage},
			code:       1,
			wantStderr: "streaming trace",
		},
		{
			name:       "analyze trace",
			args:       []string{"-trace", tracePath},
			code:       0,
			wantStdout: "degradation events/min",
		},
		{
			name:       "analyze verbose",
			args:       []string{"-trace", tracePath, "-v"},
			code:       0,
			wantStdout: "trace: Mosolabs 20MHz TDD",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.code, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestBinaryTraceMatchesJSONL analyzes the same call from a JSONL file
// and from its binary columnar twin: the CLI must sniff the format and
// print byte-identical reports.
func TestBinaryTraceMatchesJSONL(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := writeTestTrace(t, dir)
	blob, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	set, err := domino.ReadTrace(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "call.dmnt")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := domino.WriteTraceBinary(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()

	outputs := make([]string, 2)
	for i, p := range []string{jsonlPath, binPath} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-trace", p, "-v"}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit %d: %s", p, code, stderr.String())
		}
		outputs[i] = stdout.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("binary report differs from JSONL report:\n--- jsonl ---\n%s\n--- binary ---\n%s", outputs[0], outputs[1])
	}
}

// TestCodegenOutputCompiles-ish: the generated file must at least be
// written and contain the package clause.
func TestCodegenWritesDetector(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "detect.go")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-codegen", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "package detect") || !strings.Contains(string(src), "BackwardTrace") {
		t.Fatalf("generated detector malformed:\n%.200s", src)
	}
}
