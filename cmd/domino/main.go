// Command domino analyzes a cross-layer trace — JSONL or the compact
// binary columnar format, sniffed from the file's first bytes — with
// the Domino causal-chain detector and reports detected events,
// matched chains, and root-cause statistics.
//
// Usage:
//
//	domino -trace call.jsonl [-graph chains.txt] [-codegen out.go] [-v]
//	domino -trace call.dmnt
//
// Without -graph the paper's default Fig. 9 graph (24 chains) is used.
// -codegen writes the generated Go detector for the graph and exits.
//
// The trace is streamed through the incremental analyzer
// (domino.NewTraceReader + domino.StreamRecords): only the sliding
// detection window is buffered, never the whole trace, so arbitrarily
// long captures analyze in O(window) memory. Traces written by current
// tooling are time-ordered and stream directly; a type-grouped legacy
// file is rejected with a late-record error — rewrite it with the
// current writer (read + write once) to make it streamable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/domino5g/domino"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("domino", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "path to a trace set, JSONL or binary (required unless -codegen)")
	graphPath := fs.String("graph", "", "path to a causal-chain DSL file (default: built-in Fig. 9 graph)")
	codegen := fs.String("codegen", "", "write the generated Go detector to this path and exit")
	verbose := fs.Bool("v", false, "print per-window chain matches")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "domino:", err)
		return 1
	}

	graph := domino.DefaultGraph()
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return fail(err)
		}
		g, err := domino.ParseChains(f)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("parsing %s: %w", *graphPath, err))
		}
		graph = g
	}

	if *codegen != "" {
		src := domino.GenerateGo(graph, "detect")
		if err := os.WriteFile(*codegen, []byte(src), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote generated detector (%d chains) to %s\n", len(graph.EnumerateChains()), *codegen)
		return 0
	}

	if *tracePath == "" {
		fmt.Fprintln(stderr, "domino: -trace is required unless -codegen is given")
		fs.Usage()
		return 2
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return fail(err)
	}
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
	if err != nil {
		f.Close()
		return fail(err)
	}
	report, err := domino.StreamRecords(f, domino.NewStreamAnalyzer(analyzer, domino.StreamConfig{}))
	f.Close()
	if err != nil {
		return fail(fmt.Errorf("streaming trace: %w", err))
	}

	label := report.CellName
	if report.Scenario != "" {
		label += ", scenario " + report.Scenario
	}
	fmt.Fprintf(stdout, "trace: %s (%v, %d chains configured)\n\n", label, report.Duration, len(analyzer.Chains()))
	fmt.Fprintln(stdout, "5G causes (events/min):")
	for _, c := range domino.CauseClasses() {
		fmt.Fprintf(stdout, "  %-18s %6.2f\n", c, report.EventsPerMinute(c))
	}
	fmt.Fprintln(stdout, "\nWebRTC consequences (events/min):")
	for _, c := range domino.ConsequenceClasses() {
		fmt.Fprintf(stdout, "  %-22s %6.2f\n", c, report.EventsPerMinute(c))
	}
	fmt.Fprintf(stdout, "\ndegradation events/min: %.2f\n",
		report.DegradationEventsPerMinute(domino.ConsequenceClasses()))

	fmt.Fprintln(stdout, "\ntop matched chains:")
	for _, cc := range report.TopChains(10) {
		fmt.Fprintf(stdout, "  %4d×  %s\n", cc.Events, cc.Chain.String())
	}

	probs := report.ConditionalProbabilities(domino.CauseClasses(), domino.ConsequenceClasses())
	fmt.Fprintln(stdout, "\nP(cause | consequence):")
	for _, cons := range domino.ConsequenceClasses() {
		fmt.Fprintf(stdout, "  %s:\n", cons)
		for _, cause := range domino.CauseClasses() {
			if p := probs[cons][cause]; p > 0 {
				fmt.Fprintf(stdout, "    %-18s %5.1f%%\n", cause, p*100)
			}
		}
		if p := probs[cons]["unknown"]; p > 0 {
			fmt.Fprintf(stdout, "    %-18s %5.1f%%\n", "unknown", p*100)
		}
	}

	if *verbose {
		fmt.Fprintln(stdout, "\nper-window matches:")
		for _, w := range report.Windows {
			if len(w.ChainIDs) == 0 {
				continue
			}
			fmt.Fprintf(stdout, "  [%v, %v) chains=%v causes=%v\n", w.Vector.Start, w.Vector.End, w.ChainIDs, w.Causes)
		}
	}
	return 0
}
