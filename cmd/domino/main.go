// Command domino analyzes a cross-layer trace (JSONL) with the Domino
// causal-chain detector and reports detected events, matched chains,
// and root-cause statistics.
//
// Usage:
//
//	domino -trace call.jsonl [-graph chains.txt] [-codegen out.go] [-v]
//
// Without -graph the paper's default Fig. 9 graph (24 chains) is used.
// -codegen writes the generated Go detector for the graph and exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/domino5g/domino"
)

func main() {
	tracePath := flag.String("trace", "", "path to a JSONL trace set (required unless -codegen)")
	graphPath := flag.String("graph", "", "path to a causal-chain DSL file (default: built-in Fig. 9 graph)")
	codegen := flag.String("codegen", "", "write the generated Go detector to this path and exit")
	verbose := flag.Bool("v", false, "print per-window chain matches")
	flag.Parse()

	graph := domino.DefaultGraph()
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		g, err := domino.ParseChains(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *graphPath, err))
		}
		graph = g
	}

	if *codegen != "" {
		src := domino.GenerateGo(graph, "detect")
		if err := os.WriteFile(*codegen, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote generated detector (%d chains) to %s\n", len(graph.EnumerateChains()), *codegen)
		return
	}

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	set, err := domino.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("reading trace: %w", err))
	}

	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
	if err != nil {
		fatal(err)
	}
	report, err := analyzer.Analyze(set)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %s (%v, %d chains configured)\n\n", set.CellName, set.Duration, len(analyzer.Chains()))
	fmt.Println("5G causes (events/min):")
	for _, c := range domino.CauseClasses() {
		fmt.Printf("  %-18s %6.2f\n", c, report.EventsPerMinute(c))
	}
	fmt.Println("\nWebRTC consequences (events/min):")
	for _, c := range domino.ConsequenceClasses() {
		fmt.Printf("  %-22s %6.2f\n", c, report.EventsPerMinute(c))
	}
	fmt.Printf("\ndegradation events/min: %.2f\n",
		report.DegradationEventsPerMinute(domino.ConsequenceClasses()))

	fmt.Println("\ntop matched chains:")
	for _, cc := range report.TopChains(10) {
		fmt.Printf("  %4d×  %s\n", cc.Events, cc.Chain.String())
	}

	probs := report.ConditionalProbabilities(domino.CauseClasses(), domino.ConsequenceClasses())
	fmt.Println("\nP(cause | consequence):")
	for _, cons := range domino.ConsequenceClasses() {
		fmt.Printf("  %s:\n", cons)
		for _, cause := range domino.CauseClasses() {
			if p := probs[cons][cause]; p > 0 {
				fmt.Printf("    %-18s %5.1f%%\n", cause, p*100)
			}
		}
		if p := probs[cons]["unknown"]; p > 0 {
			fmt.Printf("    %-18s %5.1f%%\n", "unknown", p*100)
		}
	}

	if *verbose {
		fmt.Println("\nper-window matches:")
		for _, w := range report.Windows {
			if len(w.ChainIDs) == 0 {
				continue
			}
			fmt.Printf("  [%v, %v) chains=%v causes=%v\n", w.Vector.Start, w.Vector.End, w.ChainIDs, w.Causes)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "domino:", err)
	os.Exit(1)
}
