package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String() + errOut.String(), code
}

func TestLinkValidation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "real.md"), []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "examples"), 0o755); err != nil {
		t.Fatal(err)
	}
	md := filepath.Join(dir, "doc.md")
	content := `# Doc
A [good file link](real.md) and a [good dir link](examples/).
An [anchor into a file](real.md#section) and a [pure fragment](#local).
An [external link](https://example.com/missing) is never checked.
A [broken link](missing.md) and an [anchored broken link](gone.md#top).
`
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := check(t, md)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, `doc.md:5: broken link "missing.md"`) ||
		!strings.Contains(out, `broken link "gone.md#top"`) ||
		!strings.Contains(out, "2 broken links") {
		t.Fatalf("wrong findings:\n%s", out)
	}
	for _, banned := range []string{"real.md", "examples", "example.com", "#local"} {
		if strings.Contains(out, "broken link \""+banned) {
			t.Fatalf("false positive on %q:\n%s", banned, out)
		}
	}
}

func TestCleanFileAndBadArgs(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "clean.md")
	if err := os.WriteFile(md, []byte("no links here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := check(t, md); code != 0 {
		t.Fatalf("clean file flagged (exit %d):\n%s", code, out)
	}
	if _, code := check(t); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if _, code := check(t, filepath.Join(dir, "absent.md")); code != 2 {
		t.Fatalf("unreadable file: exit %d, want 2", code)
	}
}
