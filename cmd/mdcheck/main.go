// Command mdcheck validates relative links in markdown files so the
// documentation set (README, ARCHITECTURE, ROADMAP, ...) cannot drift
// from the tree it describes. For every [text](target) whose target is
// not an absolute URL or a pure #fragment, the file or directory must
// exist relative to the markdown file; exit status 1 otherwise:
//
//	mdcheck README.md ARCHITECTURE.md ROADMAP.md
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links, ignoring images' leading "!"
// by capturing only the target. Nested parens in targets are rare
// enough in this repo's docs to keep the pattern simple.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "mdcheck: no markdown files given")
		return 2
	}
	broken := 0
	for _, md := range args {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintln(stderr, "mdcheck:", err)
			return 2
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !checkable(target) {
					continue
				}
				target = strings.SplitN(target, "#", 2)[0]
				if _, err := os.Stat(filepath.Join(filepath.Dir(md), target)); err != nil {
					fmt.Fprintf(stdout, "%s:%d: broken link %q\n", md, i+1, m[1])
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(stdout, "mdcheck: %d broken links\n", broken)
		return 1
	}
	return 0
}

// checkable reports whether a link target is a relative path this tool
// can verify: external URLs and intra-document fragments are not.
func checkable(target string) bool {
	if strings.HasPrefix(target, "#") || strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return false
	}
	return true
}
