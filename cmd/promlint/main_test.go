package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validScrape = `# HELP x_total A counter.
# TYPE x_total counter
x_total 3
# HELP y_seconds A histogram.
# TYPE y_seconds histogram
y_seconds_bucket{le="0.1"} 1
y_seconds_bucket{le="+Inf"} 2
y_seconds_sum 0.3
y_seconds_count 2
`

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(good, []byte(validScrape), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("naked_sample 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{good}, &out, &errOut); code != 0 {
		t.Fatalf("valid scrape: exit %d, out:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok (2 families, 5 samples)") {
		t.Fatalf("summary missing: %s", out.String())
	}

	out.Reset()
	if code := run([]string{good, bad}, &out, &errOut); code != 1 {
		t.Fatalf("invalid scrape: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "bad.txt:") {
		t.Fatalf("findings not attributed to file: %s", out.String())
	}

	if code := run([]string{filepath.Join(dir, "missing.txt")}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}
