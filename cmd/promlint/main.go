// Command promlint validates Prometheus text exposition (format
// 0.0.4) read from files or standard input, using the same checks
// dominod's /metrics output is tested against (internal/obs.Lint):
// HELP/TYPE metadata before samples, contiguous families, counters
// suffixed _total, and well-formed cumulative histograms.
//
//	curl -s localhost:8077/metrics | promlint
//	promlint scrape1.txt scrape2.txt
//
// Exit status 0 when every input is clean, 1 on any lint finding,
// 2 on I/O errors.
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/domino5g/domino/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return lintOne("<stdin>", os.Stdin, stdout, stderr)
	}
	worst := 0
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "promlint:", err)
			return 2
		}
		code := lintOne(path, f, stdout, stderr)
		f.Close()
		if code > worst {
			worst = code
		}
	}
	return worst
}

func lintOne(name string, r io.Reader, stdout, stderr io.Writer) int {
	errs, stats := obs.Lint(r)
	for _, e := range errs {
		fmt.Fprintf(stdout, "%s: %v\n", name, e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(stdout, "%s: %d problems (%d families, %d samples)\n",
			name, len(errs), stats.Families, stats.Samples)
		return 1
	}
	fmt.Fprintf(stdout, "%s: ok (%d families, %d samples)\n", name, stats.Families, stats.Samples)
	return 0
}
