// Package domino is the public API of the Domino reproduction: an
// automated, cross-layer root-cause analyzer for 5G video-conferencing
// quality degradation (Yi et al., IMC 2025), together with the
// simulation substrate used to reproduce the paper's evaluation.
//
// The analysis pipeline:
//
//	graph, _ := domino.ParseChains(strings.NewReader(domino.DefaultChainsText))
//	analyzer, _ := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
//	report, _ := analyzer.Analyze(traceSet)
//	fmt.Println(report.EventsPerMinute("harq_retx"))
//
// Trace sets come either from the built-in 5G+WebRTC simulator (see
// NewSession / Presets) or from external telemetry converted to the
// JSONL trace format (ReadTrace).
//
// For live (in-call) diagnosis, the streaming subsystem analyzes a
// session while it is still running, holding only the sliding window:
//
//	sa := domino.NewStreamAnalyzer(analyzer, domino.StreamConfig{})
//	report, _ := domino.StreamRecords(jsonlStream, sa)
//
// cmd/dominod packages the same path as an always-on ingest service.
//
// Completed reports can be retained in an embedded columnar store for
// longitudinal, fleet-wide queries (time range, cell, cause class,
// fired-node signature) and aggregations (top causal chains, cause
// rates over time, nearest prior incident):
//
//	store := domino.NewRCAStore(domino.RCAStoreOptions{})
//	store.Insert(domino.RecordFromReport("s001", start, report))
//	top := store.TopChains(domino.RCAQuery{Cell: "tdd"}, 5)
//
// cmd/dominod serves the same queries over HTTP (/query,
// /incidents/similar) and cmd/rcaquery runs them offline against a
// spilled store file.
package domino

import (
	"io"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stream"
	"github.com/domino5g/domino/internal/trace"
)

// Re-exported analysis types.
type (
	// Analyzer slides the detection window over a trace and matches
	// causal chains.
	Analyzer = core.Analyzer
	// DetectorConfig holds window geometry and Table 5 thresholds.
	DetectorConfig = core.DetectorConfig
	// Graph is the user-configurable causal DAG.
	Graph = core.Graph
	// Chain is one root-to-consequence path.
	Chain = core.Chain
	// Report is a full analysis result.
	Report = core.Report
	// TraceSet is a merged cross-layer trace.
	TraceSet = trace.Set
	// Session is a simulated two-party call over a 5G cell.
	Session = rtc.Session
	// SessionConfig parameterizes a simulated call.
	SessionConfig = rtc.SessionConfig
	// CellConfig describes a simulated 5G cell.
	CellConfig = ran.CellConfig
	// Time is a simulation timestamp in microseconds.
	Time = sim.Time

	// WindowResult is the detection output for one window position.
	WindowResult = core.WindowResult
	// EventRun is one collapsed per-node event run.
	EventRun = core.EventRun
	// ChainRun is one collapsed per-chain event run.
	ChainRun = core.ChainRun

	// Scenario is a declarative workload: a base cell preset plus a
	// schedule of timed, per-layer dynamics.
	Scenario = scenario.Scenario
	// ScenarioDynamic is one timed perturbation inside a scenario.
	ScenarioDynamic = scenario.Dynamic

	// TraceRecord is one streamed trace record (exactly one field set).
	TraceRecord = trace.Record
	// TraceHeader is the stream metadata record.
	TraceHeader = trace.Header
	// TraceStreamReader decodes a JSONL trace one record at a time.
	TraceStreamReader = trace.StreamReader
	// TraceBinaryReader decodes a binary columnar trace one record (or
	// one block batch) at a time.
	TraceBinaryReader = trace.BinaryStreamReader
	// TraceRecordReader is the streaming decode interface both trace
	// readers implement: Next/Header plus batched ReadBatch.
	TraceRecordReader = trace.RecordReader
	// StreamAnalyzer incrementally analyzes one session's record stream
	// with O(window) buffered state.
	StreamAnalyzer = stream.Analyzer
	// StreamConfig parameterizes a StreamAnalyzer (lateness slack,
	// live-emission callbacks).
	StreamConfig = stream.Config
	// StreamStats counts a stream's progress.
	StreamStats = stream.Stats

	// RCAStore is an embedded columnar store of completed per-session
	// RCA reports, queryable across a fleet's history.
	RCAStore = rcastore.Store
	// RCAStoreOptions bounds an RCAStore's block geometry and retention.
	RCAStoreOptions = rcastore.Options
	// RCARecord is one stored session outcome (the columnar row form of
	// a Report).
	RCARecord = rcastore.Record
	// RCAQuery selects stored records by time range, cell, scenario,
	// session, cause class, and fired-node signature.
	RCAQuery = rcastore.Query
	// RCAChainAgg ranks one causal chain across matching sessions.
	RCAChainAgg = rcastore.ChainAgg
	// RCACauseBucket is one per-cell, per-time-bucket cause-class rate.
	RCACauseBucket = rcastore.CauseBucket
	// RCAMatch is one nearest-prior-incident result with its Hamming
	// distance from the probe signature.
	RCAMatch = rcastore.Match
)

// DefaultChainsText is the paper's Fig. 9 causal graph in DSL form (24
// chains).
const DefaultChainsText = core.DefaultChainsText

// Second re-exports the time unit for session durations.
const Second = sim.Second

// NewAnalyzer builds an analyzer; nil graph selects the default Fig. 9
// graph and a zero config the paper's Table 5 thresholds. The returned
// Analyzer is immutable and safe for concurrent use.
func NewAnalyzer(cfg DetectorConfig, g *Graph) (*Analyzer, error) {
	return core.NewAnalyzer(cfg, g)
}

// AnalyzeBatch analyzes independent trace sets concurrently across the
// given number of workers (<= 0 selects GOMAXPROCS). Report i always
// corresponds to sets[i], so the output is identical to calling
// a.Analyze in a sequential loop — only faster on multi-core.
func AnalyzeBatch(a *Analyzer, workers int, sets ...*TraceSet) ([]*Report, error) {
	return a.AnalyzeBatch(workers, sets...)
}

// ParseChains parses causal-chain DSL text.
func ParseChains(r io.Reader) (*Graph, error) { return core.ParseChains(r) }

// ParseChainsString parses causal-chain DSL text from a string.
func ParseChainsString(s string) (*Graph, error) { return core.ParseChainsString(s) }

// DefaultGraph returns the paper's Fig. 9 causal graph.
func DefaultGraph() *Graph { return core.DefaultGraph() }

// GenerateGo emits a standalone Go detector for a graph (Fig. 11).
func GenerateGo(g *Graph, pkg string) string { return core.GenerateGo(g, pkg) }

// DefaultDetectorConfig returns the paper's Table 5 thresholds.
func DefaultDetectorConfig() DetectorConfig { return core.DefaultDetectorConfig() }

// CauseClasses returns the six 5G cause classes of Fig. 9/10.
func CauseClasses() []string { return core.CauseClasses() }

// ConsequenceClasses returns the three WebRTC consequence classes.
func ConsequenceClasses() []string { return core.ConsequenceClasses() }

// NewSession builds a simulated two-party call; Run it to obtain a
// trace set.
func NewSession(cfg SessionConfig) (*Session, error) { return rtc.NewSession(cfg) }

// DefaultSessionConfig returns a call on the given cell preset.
func DefaultSessionConfig(cell CellConfig, seed uint64) SessionConfig {
	return rtc.DefaultSessionConfig(cell, seed)
}

// Presets returns the paper's four cell configurations (Table 1).
func Presets() []CellConfig { return ran.Presets() }

// PresetByName looks a preset up case-insensitively by slug, alias,
// or full Table 1 name ("fdd", "tdd", "amarisoft", "mosolabs",
// "T-Mobile 15MHz FDD"); unknown names report the valid slugs.
func PresetByName(name string) (CellConfig, error) { return ran.PresetByName(name) }

// CellNames returns the registered cell preset slugs.
func CellNames() []string { return ran.CellNames() }

// Scenarios returns the registered scenario catalog in registration
// order: the four Table 1 presets followed by the degradation
// scenarios, each provoking a different causal chain.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioNames returns the registered scenario names.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName looks a registered scenario up case-insensitively;
// unknown names report the valid ones.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// ParseScenario decodes and validates one scenario from JSON.
func ParseScenario(r io.Reader) (Scenario, error) { return scenario.Parse(r) }

// NewScenarioSession builds a simulated call for the scenario at the
// given seed, with every dynamic armed; Run it to obtain a trace
// labeled with the scenario name.
func NewScenarioSession(s Scenario, seed uint64) (*Session, error) { return s.Build(seed) }

// NewRCAStore returns an empty fleet RCA store; a zero Options selects
// the defaults (256-row blocks, unbounded retention).
func NewRCAStore(opts RCAStoreOptions) *RCAStore { return rcastore.New(opts) }

// LoadRCAStore rebuilds a store from a spilled JSONL stream (written by
// RCAStore.Spill or dominod -store-spill). Loading and re-spilling an
// unevicted store is byte-identical.
func LoadRCAStore(r io.Reader, opts RCAStoreOptions) (*RCAStore, error) {
	return rcastore.Load(r, opts)
}

// RecordFromReport collapses a completed analysis report into the
// columnar record form: fired nodes, per-chain run counts, and
// cause-class rollups, stamped with the session ID and fleet-absolute
// start time.
func RecordFromReport(session string, start Time, rep *Report) RCARecord {
	return rcastore.FromReport(session, start, rep)
}

// ReadTrace loads a trace set in either encoding — JSONL or the
// compact binary columnar format — sniffing the binary magic from the
// stream's first bytes.
func ReadTrace(r io.Reader) (*TraceSet, error) { return trace.ReadAuto(r) }

// WriteTrace stores a trace set as JSONL, records merged in timestamp
// order so the file replays through the streaming analyzer like the
// live session did.
func WriteTrace(w io.Writer, set *TraceSet) error { return trace.WriteJSONL(w, set) }

// WriteTraceBinary stores a trace set in the compact binary columnar
// format: dictionary-interned names, per-series columns with
// delta-encoded timestamps and varint values in fixed-size blocks.
// Records are emitted in exactly WriteTrace's merged timestamp order,
// so decoding either encoding of the same set yields an identical
// record stream — JSONL stays the compatibility path and differential
// oracle.
func WriteTraceBinary(w io.Writer, set *TraceSet) error { return trace.WriteBinary(w, set) }

// NewTraceStreamReader returns an incremental JSONL trace decoder that
// yields one record per Next call without buffering the full set.
func NewTraceStreamReader(r io.Reader) *TraceStreamReader { return trace.NewStreamReader(r) }

// NewTraceReader sniffs the stream's format — binary magic versus
// JSONL — and returns the matching incremental decoder. Use it when
// the producer cannot declare a content type (files, stdin).
func NewTraceReader(r io.Reader) TraceRecordReader { return trace.NewAutoStreamReader(r) }

// NewStreamAnalyzer returns an incremental analyzer for one session's
// record stream, driving the given (shared, immutable) Analyzer. Push
// records in timestamp order (up to cfg.Lateness slack) and Close for
// the final report — identical, for the same records, to a batch
// Analyze over the equivalent trace set.
func NewStreamAnalyzer(a *Analyzer, cfg StreamConfig) *StreamAnalyzer {
	return stream.New(a, cfg)
}

// StreamRecords pipes a trace stream — JSONL or binary columnar, the
// format is sniffed — record-by-record into sa and returns the final
// report. It is the streaming counterpart of ReadTrace + Analyze: the
// full trace is never held in memory, only the sliding detection
// window.
func StreamRecords(r io.Reader, sa *StreamAnalyzer) (*Report, error) {
	sr := trace.NewAutoStreamReader(r)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := sa.Push(rec); err != nil {
			return nil, err
		}
	}
	return sa.Close()
}
