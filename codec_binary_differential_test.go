package domino

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"
)

// TestBinaryDifferentialAllScenarios pins the binary codec against the
// JSONL oracle across the full scenario catalog: for every registered
// scenario, the binary encoding of the generated trace must (a) decode
// to exactly the record stream of the JSONL encoding and (b) produce a
// byte-identical streaming-analysis report. This is the acceptance
// contract for format negotiation — a session ingested as binary is
// indistinguishable from the same session ingested as JSONL.
func TestBinaryDifferentialAllScenarios(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) < 14 {
		t.Fatalf("catalog has %d scenarios, want >= 14", len(scenarios))
	}
	analyzer, err := NewAnalyzer(DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			sess, err := NewScenarioSession(sc, 17)
			if err != nil {
				t.Fatal(err)
			}
			set := sess.Run(6 * Second)

			var jbuf, bbuf bytes.Buffer
			if err := WriteTrace(&jbuf, set); err != nil {
				t.Fatal(err)
			}
			if err := WriteTraceBinary(&bbuf, set); err != nil {
				t.Fatal(err)
			}
			if bbuf.Len() >= jbuf.Len() {
				t.Errorf("binary encoding (%d bytes) not smaller than JSONL (%d bytes)", bbuf.Len(), jbuf.Len())
			}

			// (a) identical record streams.
			jr := NewTraceReader(bytes.NewReader(jbuf.Bytes()))
			br := NewTraceReader(bytes.NewReader(bbuf.Bytes()))
			if _, ok := jr.(*TraceStreamReader); !ok {
				t.Fatalf("sniffed JSONL reader is %T", jr)
			}
			if _, ok := br.(*TraceBinaryReader); !ok {
				t.Fatalf("sniffed binary reader is %T", br)
			}
			for i := 0; ; i++ {
				jrec, jerr := jr.Next()
				brec, berr := br.Next()
				if (jerr == io.EOF) != (berr == io.EOF) {
					t.Fatalf("record %d: stream lengths differ (jsonl err %v, binary err %v)", i, jerr, berr)
				}
				if jerr == io.EOF {
					break
				}
				if jerr != nil || berr != nil {
					t.Fatalf("record %d: jsonl err %v, binary err %v", i, jerr, berr)
				}
				if !reflect.DeepEqual(jrec, brec) {
					t.Fatalf("record %d differs:\njsonl  %+v\nbinary %+v", i, jrec, brec)
				}
			}

			// (b) byte-identical streaming reports.
			jrep, err := StreamRecords(bytes.NewReader(jbuf.Bytes()), NewStreamAnalyzer(analyzer, StreamConfig{}))
			if err != nil {
				t.Fatal(err)
			}
			brep, err := StreamRecords(bytes.NewReader(bbuf.Bytes()), NewStreamAnalyzer(analyzer, StreamConfig{}))
			if err != nil {
				t.Fatal(err)
			}
			jjson, err := json.Marshal(jrep)
			if err != nil {
				t.Fatal(err)
			}
			bjson, err := json.Marshal(brep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jjson, bjson) {
				t.Fatalf("reports differ:\njsonl  %s\nbinary %s", jjson, bjson)
			}
		})
	}
}
