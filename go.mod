module github.com/domino5g/domino

go 1.22
