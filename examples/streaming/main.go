// Streaming: analyze a call while it is "happening". A simulated
// session is serialized to JSONL down one end of a pipe — standing in
// for a live collector — and a streaming analyzer consumes it from the
// other end record-by-record, printing root-cause diagnoses as each
// detection window closes, long before the call ends. The final report
// is identical to what batch analysis of the full trace would produce.
package main

import (
	"fmt"
	"io"
	"log"

	"github.com/domino5g/domino"
)

func main() {
	// 1. Simulate a call on the congested T-Mobile FDD cell and treat
	// its trace as a live session feed.
	cell, err := domino.PresetByName("fdd")
	if err != nil {
		log.Fatal(err)
	}
	session, err := domino.NewSession(domino.DefaultSessionConfig(cell, 42))
	if err != nil {
		log.Fatal(err)
	}
	traceSet := session.Run(30 * domino.Second)

	pr, pw := io.Pipe()
	go func() {
		// The "collector" side: records leave in timestamp order, the
		// way a live exporter would emit them.
		pw.CloseWithError(domino.WriteTrace(pw, traceSet))
	}()

	// 2. The "operator" side: an incremental analyzer that surfaces
	// root causes live, as windows close.
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	sa := domino.NewStreamAnalyzer(analyzer, domino.StreamConfig{
		OnWindow: func(w domino.WindowResult) {
			if len(w.Causes) > 0 {
				fmt.Printf("  [%v, %v) live diagnosis: %v (chains %v)\n",
					w.Vector.Start, w.Vector.End, w.Causes, w.ChainIDs)
			}
		},
	})
	report, err := domino.StreamRecords(pr, sa)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The final report matches batch analysis of the same trace.
	stats := sa.Stats()
	fmt.Printf("\nstreamed %d records, %d windows; peak buffer %d samples (vs %d in the full trace)\n",
		stats.Records, stats.Windows, stats.MaxBuffered,
		func() int { c := traceSet.Counts(); return c.DCI + c.GNBLog + c.Packets + c.WebRTC }())
	fmt.Println("\n5G causes (events/min):")
	for _, cause := range domino.CauseClasses() {
		fmt.Printf("  %-18s %6.2f\n", cause, report.EventsPerMinute(cause))
	}
	fmt.Printf("\ndegradation events/min: %.2f\n",
		report.DegradationEventsPerMinute(domino.ConsequenceClasses()))
}
