// Fleet-scale longitudinal queries: simulate a small fleet of
// degradation scenarios, retain every completed report in the embedded
// RCA store, and then answer the questions an operator actually asks —
// which causal chains dominate, how cause rates trend per cell, and
// which prior incident a new outage most resembles.
//
// The same query engine backs dominod's GET /query and
// GET /incidents/similar endpoints and the offline cmd/rcaquery CLI.
package main

import (
	"fmt"
	"log"

	"github.com/domino5g/domino"
)

func main() {
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	store := domino.NewRCAStore(domino.RCAStoreOptions{})

	// A small fleet: two sessions of each degradation scenario at
	// distinct seeds, spaced a minute apart on a synthetic timeline.
	scenarios := []string{"harq-storm", "rush-hour-cross-traffic", "flapping-rrc"}
	session := 0
	for _, name := range scenarios {
		scn, err := domino.ScenarioByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, seed := range []uint64{11, 23} {
			sess, err := domino.NewScenarioSession(scn, seed)
			if err != nil {
				log.Fatal(err)
			}
			report, err := analyzer.Analyze(sess.Run(40 * domino.Second))
			if err != nil {
				log.Fatal(err)
			}
			id := fmt.Sprintf("s%03d", session)
			start := domino.Time(session) * 60_000_000 // one minute apart, µs
			store.Insert(domino.RecordFromReport(id, start, report))
			session++
		}
	}
	fmt.Printf("fleet stored: %d sessions across %d scenarios\n\n", store.Len(), len(scenarios))

	// Q1: which causal chains dominate the whole fleet's history?
	fmt.Println("top causal chains, fleet-wide:")
	for _, c := range store.TopChains(domino.RCAQuery{}, 3) {
		fmt.Printf("  %3d runs in %d sessions  %s\n", c.Runs, c.Sessions, c.Chain)
	}

	// Q2: per-cell cause-class rates in two-minute buckets.
	fmt.Println("\ncause rates per cell (2-minute buckets):")
	for _, b := range store.CauseRates(domino.RCAQuery{}, 2*60_000_000) {
		fmt.Printf("  %-22s t=%3ds  %-18s %.1f runs/min\n",
			b.Cell, int64(b.Bucket)/1_000_000, b.Cause, b.RunsPerMin)
	}

	// Q3: a new incident just fired these nodes — which prior session
	// looked most like it?
	probe := []string{"harq_retx", "forward_delay_up", "jitter_buffer_drain"}
	fmt.Printf("\nnearest prior incidents to signature %v:\n", probe)
	for _, m := range store.Similar(probe, domino.RCAQuery{}, 3) {
		fmt.Printf("  distance %d  %s (%s, %s)\n", m.Distance, m.Session, m.Cell, m.Scenario)
	}
}
