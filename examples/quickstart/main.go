// Quickstart: simulate a one-minute WebRTC call over the Amarisoft
// private 5G cell, run the Domino analyzer with the paper's default
// causal graph, and print the detected root causes.
package main

import (
	"fmt"
	"log"

	"github.com/domino5g/domino"
)

func main() {
	// 1. Pick a cell preset and simulate a two-party call.
	cell, err := domino.PresetByName("amarisoft")
	if err != nil {
		log.Fatal(err)
	}
	session, err := domino.NewSession(domino.DefaultSessionConfig(cell, 42))
	if err != nil {
		log.Fatal(err)
	}
	traceSet := session.Run(60 * domino.Second)
	counts := traceSet.Counts()
	fmt.Printf("simulated %s: %d DCI, %d gNB-log, %d packet, %d stats records\n\n",
		cell.Name, counts.DCI, counts.GNBLog, counts.Packets, counts.WebRTC)

	// 2. Analyze with the default Fig. 9 graph (24 chains) and the
	// paper's Table 5 thresholds.
	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	report, err := analyzer.Analyze(traceSet)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	fmt.Println("5G causes (events/min):")
	for _, cause := range domino.CauseClasses() {
		fmt.Printf("  %-18s %6.2f\n", cause, report.EventsPerMinute(cause))
	}
	fmt.Println("\nWebRTC consequences (events/min):")
	for _, cons := range domino.ConsequenceClasses() {
		fmt.Printf("  %-22s %6.2f\n", cons, report.EventsPerMinute(cons))
	}
	fmt.Println("\nmost frequent causal chains:")
	for _, cc := range report.TopChains(5) {
		fmt.Printf("  %3d×  %s\n", cc.Events, cc.Chain.String())
	}
}
