// RRC-storm scenario (the paper's Fig. 19 / §5.3): spurious RRC
// releases during an active call halt the PHY for ~300 ms each,
// buffering traffic at the UE and spiking one-way delay toward 400 ms.
// The UE's RNTI changes across every re-establishment — the telemetry
// signature Domino keys on.
package main

import (
	"fmt"
	"log"

	"github.com/domino5g/domino"
)

func main() {
	cell, err := domino.PresetByName("fdd")
	if err != nil {
		log.Fatal(err)
	}
	session, err := domino.NewSession(domino.DefaultSessionConfig(cell, 99))
	if err != nil {
		log.Fatal(err)
	}
	// Script a storm: releases at 15 s, 25 s, and 35 s.
	for _, at := range []domino.Time{15 * domino.Second, 25 * domino.Second, 35 * domino.Second} {
		session.Cell.RRC().ScriptRelease(at)
	}
	traceSet := session.Run(50 * domino.Second)

	fmt.Println("RRC transitions observed in telemetry:")
	for _, r := range traceSet.RRC {
		state := "RELEASE"
		if r.Connected {
			state = "RE-ESTABLISH"
		}
		fmt.Printf("  %v  %-13s rnti=%d cause=%s\n", r.At, state, r.RNTI, r.Cause)
	}

	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	report, err := analyzer.Analyze(traceSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrrc_state_change cause events: %d\n", report.EventCount("rrc_state_change"))
	fmt.Println("\nchains rooted at rrc_state_change:")
	for _, cc := range report.TopChains(0) {
		if cc.Chain.Cause() == "rrc_state_change" {
			fmt.Printf("  %3d×  %s\n", cc.Events, cc.Chain.String())
		}
	}
}
