// Extensibility demo (the paper's Fig. 11): define new causal chains
// in the text DSL, generate a standalone Go detector from them, and run
// the same chains through the in-process analyzer — the two share one
// backward-trace semantics.
package main

import (
	"fmt"
	"log"

	"github.com/domino5g/domino"
)

// A user-defined configuration: the exact two chains from the paper's
// Fig. 11, plus a custom chain combining HARQ pressure on the uplink
// with sender-side resolution drops.
const chains = `# user-supplied chains
dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain
ul_harq_retx --> forward_delay_up --> local_outbound_resolution_down
`

func main() {
	graph, err := domino.ParseChainsString(chains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d chains; causes=%v consequences=%v\n\n",
		len(graph.EnumerateChains()), graph.Causes(), graph.Consequences())

	// Generate the standalone detector (the paper emits Python; this
	// reproduction emits Go).
	fmt.Println("generated detector:")
	fmt.Println(domino.GenerateGo(graph, "detect"))

	// Run the same chains in-process against a simulated call on the
	// poor-uplink Amarisoft cell.
	cell, err := domino.PresetByName("amarisoft")
	if err != nil {
		log.Fatal(err)
	}
	session, err := domino.NewSession(domino.DefaultSessionConfig(cell, 3))
	if err != nil {
		log.Fatal(err)
	}
	traceSet := session.Run(45 * domino.Second)

	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, graph)
	if err != nil {
		log.Fatal(err)
	}
	report, err := analyzer.Analyze(traceSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom-chain matches:")
	for _, cc := range report.TopChains(0) {
		fmt.Printf("  %3d×  %s\n", cc.Events, cc.Chain.String())
	}
	if report.TotalChainEvents() == 0 {
		fmt.Println("  (none in this run)")
	}
}
