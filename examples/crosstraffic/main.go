// Cross-traffic scenario (the paper's Fig. 13): a heavy downlink
// cross-traffic burst on a commercial cell crowds out the experiment
// UE's PRBs, inflating delay until GCC detects overuse and cuts the
// sender's target bitrate. Domino traces the consequence back to the
// cross_traffic root cause.
package main

import (
	"fmt"
	"log"

	"github.com/domino5g/domino"
)

func main() {
	cell, err := domino.PresetByName("fdd")
	if err != nil {
		log.Fatal(err)
	}
	session, err := domino.NewSession(domino.DefaultSessionConfig(cell, 7))
	if err != nil {
		log.Fatal(err)
	}

	// Script a 4-second burst where background UEs demand 90% of the
	// carrier, on top of the preset's stochastic load.
	session.Cell.DLCross().ScriptBurst(20*domino.Second, 24*domino.Second, 0.9)
	traceSet := session.Run(45 * domino.Second)

	analyzer, err := domino.NewAnalyzer(domino.DetectorConfig{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	report, err := analyzer.Analyze(traceSet)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("windows in which a cross-traffic chain matched:")
	for _, w := range report.Windows {
		for _, id := range w.ChainIDs {
			chain := analyzer.Chains()[id-1]
			if chain.Cause() == "cross_traffic" {
				fmt.Printf("  [%v, %v)  %s\n", w.Vector.Start, w.Vector.End, chain.String())
				break
			}
		}
	}

	probs := report.ConditionalProbabilities(domino.CauseClasses(), domino.ConsequenceClasses())
	fmt.Println("\nP(cross_traffic | consequence):")
	for _, cons := range domino.ConsequenceClasses() {
		fmt.Printf("  %-22s %5.1f%%\n", cons, probs[cons]["cross_traffic"]*100)
	}
}
