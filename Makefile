# Local entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what CI runs.

GO ?= go

.PHONY: build vet fmt fmt-check test bench dominod-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites files in place; fmt-check (used by ci) only complains.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -race ./...

# One iteration of every benchmark: regenerates every paper artifact
# through the batch engine (sequential and parallel) as a smoke test.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# End-to-end smoke of the live ingest service: start dominod, POST 8
# concurrent generated session streams, assert each /report/{id}
# matches batch analysis of the same trace.
dominod-smoke:
	$(GO) test ./cmd/dominod -run 'TestDominodSmoke' -count=1 -v

ci: build vet fmt-check test bench dominod-smoke
