# Local entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what CI runs.

GO ?= go

.PHONY: build vet fmt fmt-check test bench bench-json dominod-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites files in place; fmt-check (used by ci) only complains.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -race ./...

# One iteration of every benchmark: regenerates every paper artifact
# through the batch engine (sequential and parallel) as a smoke test.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Machine-readable perf snapshot: stream-vs-batch analyzer throughput
# plus per-scenario trace-generation throughput, as JSON. CI uploads
# BENCH_scenarios.json as an artifact to start the perf trajectory.
# Two recipe lines, not a pipe: a bench failure must fail the target,
# and benchjson itself rejects input with no benchmark lines.
bench-json:
	$(GO) test -bench='BenchmarkStreamAnalyzer|BenchmarkScenarioTraceGen' \
		-benchtime=1x -run='^$$' . > BENCH_raw.txt
	$(GO) run ./cmd/benchjson < BENCH_raw.txt > BENCH_scenarios.json && rm -f BENCH_raw.txt
	@echo "wrote BENCH_scenarios.json"

# End-to-end smoke of the live ingest service: start dominod, POST 8
# concurrent generated session streams, assert each /report/{id}
# matches batch analysis of the same trace.
dominod-smoke:
	$(GO) test ./cmd/dominod -run 'TestDominodSmoke' -count=1 -v

ci: build vet fmt-check test bench dominod-smoke
