# Local entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what CI runs.

GO ?= go

# Benchmarks covered by the machine-readable perf artifact and the CI
# perf gate: stream-vs-batch analyzer throughput, the rolling window
# evaluator and compiled-DAG step microbenchmarks, and per-scenario
# trace-generation throughput (root package), plus the event-scheduler
# and trace-codec (JSONL and binary columnar) microbenchmarks
# (internal/sim, internal/trace), the work-stealing batch executor
# (internal/parallel), the fleet ingest benchmarks in both wire formats
# (cmd/dominod) and the RCA-store insert, query, and write-ahead
# journal append/replay benchmarks (internal/rcastore). Every benchmark processes a sizable batch per
# iteration, and the gate runs -count=5 with benchjson keeping the best
# of the repeats — on shared hardware interference only makes numbers
# worse, so best-of-5 is the stable estimate to gate on.
BENCH_GATE_PATTERN = BenchmarkStreamAnalyzer|BenchmarkScenarioTraceGen|BenchmarkEngine|BenchmarkCodec|BenchmarkWindowEval|BenchmarkIncrementalStep|BenchmarkDominodIngest|BenchmarkRCAStore|BenchmarkBatchExecutor
BENCH_GATE_PKGS = . ./internal/sim ./internal/trace ./internal/parallel ./cmd/dominod ./internal/rcastore

# Absolute perf contracts the binary ingest fast path must clear on
# every run, on top of the relative gate: the negotiated binary format
# must sustain at least 2x the committed JSONL fleet-ingest baseline
# (1,282,859 records/s; measured best-of-5 on the baseline hardware is
# ~3.6x, the floor leaves headroom for shared-runner noise). Enforced
# by benchdiff -floor, which also fails if the benchmark vanishes.
BENCH_FLOORS = -floor 'BenchmarkDominodIngestBinary:records/s=2565718'

.PHONY: build vet fmt fmt-check test bench bench-json bench-diff dominod-smoke obs-smoke chaos-smoke fleet-smoke doclint mdcheck examples-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites files in place; fmt-check (used by ci) only complains.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -race ./...

# One iteration of every benchmark: regenerates every paper artifact
# through the batch engine (sequential and parallel) as a smoke test.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Machine-readable perf snapshot: refreshes the committed baseline
# BENCH_scenarios.json that `make bench-diff` gates against. Run this
# (and commit the result) after intentional perf changes or when moving
# the baseline to new hardware. Two recipe lines, not a pipe: a bench
# failure must fail the target, and benchjson itself rejects input with
# no benchmark lines.
bench-json:
	$(GO) test -bench='$(BENCH_GATE_PATTERN)' -benchtime=3x -count=5 -run='^$$' $(BENCH_GATE_PKGS) > BENCH_raw.txt
	$(GO) run ./cmd/benchjson < BENCH_raw.txt > BENCH_scenarios.json && rm -f BENCH_raw.txt
	@echo "wrote BENCH_scenarios.json"

# Perf-regression gate: run the gated benchmarks fresh, convert to
# JSON (BENCH_fresh.json), and compare against the committed
# BENCH_scenarios.json baseline. Fails (exit 1) when any throughput
# metric drops — or allocation metric grows — by more than 30%, and
# when a baselined benchmark vanishes. The report lands in
# BENCH_diff.txt; CI uploads both artifacts.
bench-diff:
	$(GO) test -bench='$(BENCH_GATE_PATTERN)' -benchtime=3x -count=5 -run='^$$' $(BENCH_GATE_PKGS) > BENCH_raw.txt
	$(GO) run ./cmd/benchjson < BENCH_raw.txt > BENCH_fresh.json && rm -f BENCH_raw.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_scenarios.json -current BENCH_fresh.json $(BENCH_FLOORS) -o BENCH_diff.txt

# End-to-end smoke of the live ingest service: start dominod, POST 8
# concurrent generated session streams, assert each /report/{id}
# matches batch analysis of the same trace.
dominod-smoke:
	$(GO) test ./cmd/dominod -run 'TestDominodSmoke' -count=1 -v

# Observability smoke: boot dominod with the pprof listener, ingest a
# generated session, validate /metrics through cmd/promlint, dump the
# flight recording, and capture a CPU profile. Artifacts land in
# obs-smoke/ (CI uploads them).
obs-smoke:
	sh scripts/obs_smoke.sh

# Crash-recovery smoke: ingest a fleet workload, kill -9 dominod
# mid-upload, restart on the surviving write-ahead journal, and assert
# the final checkpoint is byte-identical to a graceful run's. Artifacts
# (daemon logs, both checkpoints, the post-crash journal) land in
# chaos-smoke/ (CI uploads them).
chaos-smoke:
	sh scripts/chaos_smoke.sh

# Fleet failover smoke: three dominod backends behind dominolb plus a
# clean reference node; kill -9 one backend mid-upload, SIGTERM-drain
# another under an in-flight stream, saturate the survivor's ingest
# slots, and assert every balancer-served report is byte-identical to
# the clean run and the federated /metrics lints. Artifacts land in
# fleet-smoke/ (CI uploads them).
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Documentation gates — CI fails on doc drift like it fails on tests.
# doclint: every package needs a package comment; every exported façade
# symbol (root package) needs a doc comment. mdcheck: relative links in
# the top-level docs must resolve.
doclint:
	$(GO) run ./cmd/doclint -symbols .
	$(GO) run ./cmd/doclint ./internal/... ./cmd/...

mdcheck:
	$(GO) run ./cmd/mdcheck README.md ARCHITECTURE.md ROADMAP.md

# Build and vet the documented examples by name: a façade change that
# breaks one then fails a step that says "examples", not a wildcard.
examples-check:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

ci: build vet fmt-check test bench bench-diff dominod-smoke obs-smoke chaos-smoke fleet-smoke doclint mdcheck examples-check
